"""The 15-phase Krak iteration as a simulated-MPI rank program.

This module encodes Table 1 of the paper exactly: which phases broadcast,
which do the boundary exchange and the gather, which update ghost nodes at
8 or 16 bytes per node, and how many global reductions separate the phases
(22 allreduces, 6 broadcasts, 1 gather per iteration — Table 4).

The same program runs in two modes:

* **functional** (``state`` given): every phase executes its real numerics
  and the ghost exchanges carry real array payloads;
* **census** (``state=None``): phases only charge their modelled compute
  time and messages carry sizes alone.

Either way the *communication structure and message sizes* are identical,
driven by the :class:`~repro.hydro.workload.WorkloadCensus`.
"""

from __future__ import annotations

import numpy as np

from repro.hydro import kernels
from repro.hydro.dynamic import REPARTITION_PHASE, DynamicController
from repro.hydro.materials import KRAK_MATERIAL_MODELS, pressure_and_sound_speed
from repro.hydro.state import RankState
from repro.hydro.workload import WorkloadCensus
from repro.machine.costdb import (
    BOUNDARY_BYTES_PER_FACE,
    BOUNDARY_BYTES_PER_MULTI_NODE,
    BOUNDARY_MSGS_PER_STEP,
    NUM_PHASES,
    PHASE_ALLREDUCE_SIZES,
)
from repro.machine.node import NodeModel
from repro.perturb.model import FAILURE_PHASE
from repro.simmpi.api import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Isend,
    MarkIteration,
    Recv,
    SetPhase,
    WaitSends,
)

#: Tag arithmetic: tags are unique per (phase, message slot).
_TAG_STRIDE = 1000
_FINAL_GROUP_SLOT = 9


def _tag(phase: int, slot: int) -> int:
    return phase * _TAG_STRIDE + slot


class KrakProgram:
    """One rank's Krak execution: ``iterations`` full 15-phase iterations.

    Parameters
    ----------
    rank:
        This rank's id.
    census:
        Global workload census (material counts + messaging structure).
    node_model:
        Compute-cost model used to charge phase times.
    state:
        Functional :class:`RankState`, or ``None`` for census (timing) mode.
    iterations:
        Number of iterations to execute.
    fixed_dt:
        Timestep used in census mode (functional mode computes a CFL dt).
    dynamic:
        Optional shared :class:`~repro.hydro.dynamic.DynamicController`.
        When given (census mode only), each iteration re-reads its census
        from ``dynamic.step(it)`` — charging iteration ``k`` against
        ``census_at(t_k)`` — and executes any repartition event the
        controller's policy fired.
    perturb:
        Optional shared perturbation (:class:`repro.perturb.Perturbation`
        in production, its naive oracle twin under verification): per-phase
        compute scale factors and the rank-failure event.  ``None`` — and
        any perturbation whose factors come back ``None`` — leaves the op
        stream untouched, bitwise.
    """

    def __init__(
        self,
        rank: int,
        census: WorkloadCensus,
        node_model: NodeModel,
        state: RankState | None = None,
        iterations: int = 3,
        fixed_dt: float = 2.0e-7,
        models=KRAK_MATERIAL_MODELS,
        dynamic: DynamicController | None = None,
        perturb=None,
    ) -> None:
        if dynamic is not None and state is not None:
            raise ValueError("dynamic workloads run in census (timing) mode only")
        if perturb is not None and state is not None:
            raise ValueError("perturbed runs execute in census (timing) mode only")
        self.rank = rank
        self.census = census
        self.node_model = node_model
        self.state = state
        self.iterations = iterations
        self.fixed_dt = fixed_dt
        self.models = models
        self.dynamic = dynamic
        self.perturb = perturb
        self.boundary_links = census.boundary_links[rank]
        self.ghost_links = census.ghost_links[rank]
        self.work = census.work_vector(rank)
        #: Map neighbour rank → functional exchange link.
        self.state_links = (
            {lk.nbr_rank: lk for lk in state.links} if state is not None else {}
        )
        self.time = 0.0
        self.dt = fixed_dt
        #: Filled at the end of the run (same values on every rank).
        self.diagnostics: dict[str, float] = {}

    # ------------------------------------------------------------- helpers

    def _phase_seconds(self, phase: int, iteration: int) -> float:
        """Modelled compute seconds for ``phase``, noise-scaled if perturbed.

        The one shared pricing site for both execution modes: the generator
        (:meth:`__call__`) and the lowering path (:meth:`lower_into`) both
        charge through here, so a perturbed batch run stays bitwise equal
        to the scalar run by construction.
        """
        seconds = self.node_model.phase_time(
            phase, self.work, self.rank, iteration
        )
        if self.perturb is not None:
            factors = self.perturb.compute_factors(self.rank, iteration)
            if factors is not None:
                seconds = seconds * factors[phase]
        return seconds

    def _charge(self, phase: int, iteration: int):
        """Compute charge for ``phase`` from the material census."""
        return Compute(self._phase_seconds(phase, iteration))

    def _failure_event(self, iteration: int):
        """The perturbation's failure event for this iteration, if any."""
        if self.perturb is None:
            return None
        return self.perturb.failure_event(iteration)

    def _failure_update(self, iteration: int):
        """Charge a rank failure: global stall around the restart cost.

        All ranks rendezvous (failure detection), the failed rank pays its
        checkpoint/restart compute, and all ranks rendezvous again (no one
        proceeds until the rank is back) — everything attributed to
        :data:`~repro.perturb.FAILURE_PHASE`.
        """
        event = self._failure_event(iteration)
        if event is None:
            return
        fail_rank, restart_seconds = event
        yield SetPhase(FAILURE_PHASE)
        yield Barrier()
        if self.rank == fail_rank:
            yield Compute(restart_seconds)
        yield Barrier()

    def _ghost_exchange(self, phase: int, bytes_per_node: int, arrays, additive: bool):
        """Two-message-per-neighbour ghost-node exchange (Section 4.2).

        ``arrays`` is a list of node-field arrays (modified in place in
        functional mode); ``additive`` selects sum-combine (phases 4/5) vs
        owner-authoritative overwrite (phase 7).
        """
        st = self.state
        for gl in self.ghost_links:
            payload_local = payload_remote = None
            if st is not None:
                link = self.state_links[gl.nbr_rank]
                idx = link.shared_local_idx
                mine = link.owner_of_shared == self.rank
                payload_local = [a[idx[mine]].copy() for a in arrays]
                payload_remote = [a[idx[~mine]].copy() for a in arrays]
            yield Isend(
                gl.nbr_rank,
                _tag(phase, 0),
                bytes_per_node * gl.owned_by_me,
                payload_local,
            )
            yield Isend(
                gl.nbr_rank,
                _tag(phase, 1),
                bytes_per_node * gl.not_owned_by_me,
                payload_remote,
            )
        yield WaitSends()
        for gl in self.ghost_links:
            _, p_local = yield Recv(gl.nbr_rank, _tag(phase, 0))
            _, p_remote = yield Recv(gl.nbr_rank, _tag(phase, 1))
            if st is None:
                continue
            link = self.state_links[gl.nbr_rank]
            idx = link.shared_local_idx
            from_nbr = link.owner_of_shared == gl.nbr_rank
            if additive:
                for a, chunk in zip(arrays, p_local):
                    a[idx[from_nbr]] += chunk
                for a, chunk in zip(arrays, p_remote):
                    a[idx[~from_nbr]] += chunk
            else:
                # Owner-authoritative: adopt the sender's values for the
                # nodes the sender owns; the remote message is ignored.
                for a, chunk in zip(arrays, p_local):
                    a[idx[from_nbr]] = chunk

    def _dynamic_update(self, it: int):
        """Apply the controller's step for iteration ``it`` (census mode).

        Executes the repartition event when the policy fired — the census
        allgather (gather + broadcast) and the cell-migration point-to-point
        messages, all charged to :data:`REPARTITION_PHASE` — then rebinds
        this rank's links and work vector to the step's census, so the
        iteration is charged against ``census_at(t_it)``.
        """
        step = self.dynamic.step(it)
        plan = step.migration
        if plan is not None:
            yield SetPhase(REPARTITION_PHASE)
            yield Gather(float(self.work.sum()), 0, plan.gather_bytes)
            yield Bcast(0.0 if self.rank == 0 else None, 0, plan.bcast_bytes)
            sends = plan.matrix[self.rank]
            for dst in range(self.census.num_ranks):
                if sends[dst]:
                    yield Isend(
                        dst,
                        _tag(REPARTITION_PHASE, 0),
                        int(sends[dst]) * plan.bytes_per_cell,
                    )
            yield WaitSends()
            recvs = plan.matrix[:, self.rank]
            for src in range(self.census.num_ranks):
                if recvs[src]:
                    yield Recv(src, _tag(REPARTITION_PHASE, 0))
        self.census = step.census
        self.boundary_links = step.census.boundary_links[self.rank]
        self.ghost_links = step.census.ghost_links[self.rank]
        self.work = step.census.work_vector(self.rank)

    def _boundary_exchange(self, phase: int):
        """Per-material sextets plus the final all-materials step (§4.1)."""
        fb = BOUNDARY_BYTES_PER_FACE
        mb = BOUNDARY_BYTES_PER_MULTI_NODE
        for bl in self.boundary_links:
            for (group, faces, multi) in bl.mine.groups:
                big = fb * faces + mb * multi
                small = fb * faces
                for i in range(BOUNDARY_MSGS_PER_STEP):
                    size = big if i < 2 else small
                    yield Isend(bl.nbr_rank, _tag(phase, group * 16 + i), size)
            total = fb * bl.mine.total_faces
            for i in range(BOUNDARY_MSGS_PER_STEP):
                yield Isend(bl.nbr_rank, _tag(phase, _FINAL_GROUP_SLOT * 16 + i), total)
        yield WaitSends()
        for bl in self.boundary_links:
            for (group, faces, multi) in bl.theirs.groups:
                for i in range(BOUNDARY_MSGS_PER_STEP):
                    yield Recv(bl.nbr_rank, _tag(phase, group * 16 + i))
            for i in range(BOUNDARY_MSGS_PER_STEP):
                yield Recv(bl.nbr_rank, _tag(phase, _FINAL_GROUP_SLOT * 16 + i))

    # ------------------------------------------------- batch compilation

    def lower_into(self, writer) -> bool:
        """Emit this rank's census-mode op stream straight into ``writer``.

        The census op stream is fully deterministic — every receive carries
        no payload and every collective result is analytic (zero totals,
        ``min`` of identical timesteps) — so it can be written column-wise
        without allocating a single request object or running the
        generator.  The emitted stream is **op-for-op identical** to what
        :meth:`__call__` yields (guarded by an equivalence test), and
        ``time``/``dt``/``diagnostics`` are updated to the exact values the
        generator would compute.  Returns ``False`` in functional mode,
        which must run on the scalar engine.
        """
        if self.state is not None:
            return False
        seconds = self._phase_seconds
        for it in range(self.iterations):
            writer.mark(it)
            self._lower_failure_update(it, writer)
            if self.dynamic is not None:
                self._lower_dynamic_update(it, writer)

            # Phase charge + collective schedule, phase by phase, mirroring
            # __call__ (Table 1 / Table 4).  Census-mode collective values
            # are analytic: sums of zeros stay 0.0 and the dt "min" over
            # identical fixed timesteps is the fixed timestep.
            writer.set_phase(0)
            writer.compute(seconds(0, it))
            writer.allreduce(4)
            writer.allreduce(8)
            self.dt = self.fixed_dt
            writer.bcast(0, 4)
            writer.bcast(0, 8)

            writer.set_phase(1)
            writer.compute(seconds(1, it))
            writer.bcast(0, 4)
            writer.bcast(0, 8)
            self._lower_boundary_exchange(1, writer)
            writer.gather(0, 32)
            writer.allreduce(8)

            writer.set_phase(2)
            writer.compute(seconds(2, it))
            writer.allreduce(4)
            writer.allreduce(4)
            writer.allreduce(8)

            writer.set_phase(3)
            writer.compute(seconds(3, it))
            self._lower_ghost_exchange(3, 8, writer)
            writer.allreduce(8)

            writer.set_phase(4)
            writer.compute(seconds(4, it))
            self._lower_ghost_exchange(4, 16, writer)
            writer.allreduce(4)

            writer.set_phase(5)
            writer.compute(seconds(5, it))
            writer.allreduce(4)
            writer.allreduce(8)
            writer.allreduce(8)

            writer.set_phase(6)
            writer.compute(seconds(6, it))
            self._lower_ghost_exchange(6, 16, writer)
            writer.allreduce(8)

            writer.set_phase(7)
            writer.compute(seconds(7, it))
            writer.allreduce(4)

            writer.set_phase(8)
            writer.compute(seconds(8, it))
            writer.allreduce(8)

            writer.set_phase(9)
            writer.compute(seconds(9, it))
            writer.allreduce(8)

            writer.set_phase(10)
            writer.compute(seconds(10, it))
            writer.allreduce(4)
            writer.allreduce(8)

            writer.set_phase(11)
            writer.compute(seconds(11, it))
            writer.allreduce(8)

            writer.set_phase(12)
            writer.compute(seconds(12, it))
            writer.allreduce(4)

            writer.set_phase(13)
            writer.compute(seconds(13, it))
            writer.allreduce(8)

            writer.set_phase(14)
            writer.compute(seconds(14, it))
            writer.allreduce(4)
            writer.allreduce(8)
            writer.bcast(0, 4)
            writer.bcast(0, 8)

            self.time += self.dt
            self.diagnostics = {
                "total_mass": 0.0,
                "total_ke": 0.0,
                "total_ie": 0.0,
                "total_momentum_x": 0.0,
                "total_energy": 0.0,
                "dt": self.dt,
                "time": self.time,
            }

        writer.mark(self.iterations)
        return True

    def _lower_ghost_exchange(self, phase: int, bytes_per_node: int, writer) -> None:
        """Column form of :meth:`_ghost_exchange` (census mode)."""
        for gl in self.ghost_links:
            writer.isend(gl.nbr_rank, _tag(phase, 0), bytes_per_node * gl.owned_by_me)
            writer.isend(
                gl.nbr_rank, _tag(phase, 1), bytes_per_node * gl.not_owned_by_me
            )
        writer.wait_sends()
        for gl in self.ghost_links:
            writer.recv(gl.nbr_rank, _tag(phase, 0))
            writer.recv(gl.nbr_rank, _tag(phase, 1))

    def _lower_boundary_exchange(self, phase: int, writer) -> None:
        """Column form of :meth:`_boundary_exchange`."""
        fb = BOUNDARY_BYTES_PER_FACE
        mb = BOUNDARY_BYTES_PER_MULTI_NODE
        for bl in self.boundary_links:
            for (group, faces, multi) in bl.mine.groups:
                big = fb * faces + mb * multi
                small = fb * faces
                for i in range(BOUNDARY_MSGS_PER_STEP):
                    writer.isend(
                        bl.nbr_rank, _tag(phase, group * 16 + i),
                        big if i < 2 else small,
                    )
            total = fb * bl.mine.total_faces
            for i in range(BOUNDARY_MSGS_PER_STEP):
                writer.isend(
                    bl.nbr_rank, _tag(phase, _FINAL_GROUP_SLOT * 16 + i), total
                )
        writer.wait_sends()
        for bl in self.boundary_links:
            for (group, faces, multi) in bl.theirs.groups:
                for i in range(BOUNDARY_MSGS_PER_STEP):
                    writer.recv(bl.nbr_rank, _tag(phase, group * 16 + i))
            for i in range(BOUNDARY_MSGS_PER_STEP):
                writer.recv(bl.nbr_rank, _tag(phase, _FINAL_GROUP_SLOT * 16 + i))

    def _lower_failure_update(self, it: int, writer) -> None:
        """Column form of :meth:`_failure_update`."""
        event = self._failure_event(it)
        if event is None:
            return
        fail_rank, restart_seconds = event
        writer.set_phase(FAILURE_PHASE)
        writer.barrier()
        if self.rank == fail_rank:
            writer.compute(restart_seconds)
        writer.barrier()

    def _lower_dynamic_update(self, it: int, writer) -> None:
        """Column form of :meth:`_dynamic_update` (census mode)."""
        step = self.dynamic.step(it)
        plan = step.migration
        if plan is not None:
            writer.set_phase(REPARTITION_PHASE)
            writer.gather(0, plan.gather_bytes)
            writer.bcast(0, plan.bcast_bytes)
            sends = plan.matrix[self.rank]
            for dst in range(self.census.num_ranks):
                if sends[dst]:
                    writer.isend(
                        dst,
                        _tag(REPARTITION_PHASE, 0),
                        int(sends[dst]) * plan.bytes_per_cell,
                    )
            writer.wait_sends()
            recvs = plan.matrix[:, self.rank]
            for src in range(self.census.num_ranks):
                if recvs[src]:
                    writer.recv(src, _tag(REPARTITION_PHASE, 0))
        self.census = step.census
        self.boundary_links = step.census.boundary_links[self.rank]
        self.ghost_links = step.census.ghost_links[self.rank]
        self.work = step.census.work_vector(self.rank)

    # ------------------------------------------------------------- program

    def __call__(self):
        """The generator the engine runs."""
        sizes = PHASE_ALLREDUCE_SIZES
        st = self.state
        for it in range(self.iterations):
            yield MarkIteration(it)
            yield from self._failure_update(it)
            if self.dynamic is not None:
                yield from self._dynamic_update(it)

            # ---- Phase 1: timestep control (2 bcasts, 2 allreduces) -------
            yield SetPhase(0)
            yield self._charge(0, it)
            if st is not None:
                dt_local = kernels.stable_dt(st)
                active = float(st.num_cells)
            else:
                dt_local, active = self.fixed_dt, 0.0
            assert sizes[0] == (4, 8)
            yield Allreduce(active, "sum", 4)
            self.dt = yield Allreduce(dt_local, "min", 8)
            yield Bcast(it if self.rank == 0 else None, 0, 4)
            self.time = yield Bcast(self.time if self.rank == 0 else None, 0, 8)

            # ---- Phase 2: bcasts + boundary exchange + gather (1 allreduce)
            yield SetPhase(1)
            yield self._charge(1, it)
            yield Bcast(0 if self.rank == 0 else None, 0, 4)
            yield Bcast(0.0 if self.rank == 0 else None, 0, 8)
            yield from self._boundary_exchange(1)
            yield Gather(float(len(self.boundary_links)), 0, 32)
            assert sizes[1] == (8,)
            yield Allreduce(0.0, "sum", 8)

            # ---- Phase 3: EOS evaluation (computation only, 3 syncs) ------
            yield SetPhase(2)
            yield self._charge(2, it)
            if st is not None:
                st.pressure, st.sound_speed = pressure_and_sound_speed(
                    st.material, st.rho, st.energy, st.burn_frac, self.models
                )
                max_cs = float(st.sound_speed.max())
            else:
                max_cs = 0.0
            assert sizes[2] == (4, 4, 8)
            yield Allreduce(0.0, "max", 4)
            yield Allreduce(0.0, "sum", 4)
            yield Allreduce(max_cs, "max", 8)

            # ---- Phase 4: nodal mass + ghost update (8 B/node) ------------
            yield SetPhase(3)
            yield self._charge(3, it)
            if st is not None:
                st.node_mass[:] = kernels.scatter_corner_masses(st)
                mass_arrays = [st.node_mass]
            else:
                mass_arrays = []
            yield from self._ghost_exchange(3, 8, mass_arrays, additive=True)
            assert sizes[3] == (8,)
            local_mass = kernels.total_mass(st) if st is not None else 0.0
            total_mass = yield Allreduce(local_mass, "sum", 8)

            # ---- Phase 5: corner forces + ghost update (16 B/node) --------
            yield SetPhase(4)
            yield self._charge(4, it)
            if st is not None:
                st.viscosity = kernels.artificial_viscosity(st)
                fx, fy = kernels.corner_forces(st)
                st.fx[:] = fx
                st.fy[:] = fy
                force_arrays = [st.fx, st.fy]
            else:
                force_arrays = []
            yield from self._ghost_exchange(4, 16, force_arrays, additive=True)
            assert sizes[4] == (4,)
            yield Allreduce(0.0, "max", 4)

            # ---- Phase 6: velocity / position update (3 syncs) ------------
            yield SetPhase(5)
            yield self._charge(5, it)
            if st is not None:
                old_volume = st.volume.copy()
                kernels.advance_nodes(st, self.dt)
                owned = st.node_owner == st.rank
                mom_x = float((st.node_mass[owned] * st.vx[owned]).sum())
                local_ke = kernels.kinetic_energy(st)
            else:
                old_volume = None
                mom_x, local_ke = 0.0, 0.0
            assert sizes[5] == (4, 8, 8)
            yield Allreduce(0.0, "sum", 4)
            total_mom_x = yield Allreduce(mom_x, "sum", 8)
            total_ke = yield Allreduce(local_ke, "sum", 8)

            # ---- Phase 7: velocity ghost sync (16 B/node) ------------------
            yield SetPhase(6)
            yield self._charge(6, it)
            vel_arrays = [st.vx, st.vy] if st is not None else []
            yield from self._ghost_exchange(6, 16, vel_arrays, additive=False)
            assert sizes[6] == (8,)
            yield Allreduce(0.0, "max", 8)

            # ---- Phase 8: volume / strain rate -----------------------------
            yield SetPhase(7)
            yield self._charge(7, it)
            if st is not None:
                new_volume = kernels.compute_volumes(st)
                min_vol = float(new_volume.min())
            else:
                new_volume, min_vol = None, 0.0
            assert sizes[7] == (4,)
            global_min_vol = yield Allreduce(min_vol, "min", 4)
            if st is not None and global_min_vol <= 0.0:
                raise FloatingPointError(
                    "mesh tangled: non-positive cell volume encountered"
                )

            # ---- Phase 9: density update -----------------------------------
            yield SetPhase(8)
            yield self._charge(8, it)
            if st is not None:
                st.rho = st.cell_mass / np.maximum(new_volume, 1e-300)
            assert sizes[8] == (8,)
            yield Allreduce(0.0, "max", 8)

            # ---- Phase 10: artificial-viscosity coefficients ---------------
            yield SetPhase(9)
            yield self._charge(9, it)
            assert sizes[9] == (8,)
            yield Allreduce(0.0, "max", 8)

            # ---- Phase 11: energy update (2 syncs) --------------------------
            yield SetPhase(10)
            yield self._charge(10, it)
            if st is not None:
                kernels.update_energy(st, old_volume, new_volume)
                st.volume = np.abs(new_volume)
                local_ie = kernels.internal_energy(st)
            else:
                local_ie = 0.0
            assert sizes[10] == (4, 8)
            yield Allreduce(0.0, "sum", 4)
            total_ie = yield Allreduce(local_ie, "sum", 8)

            # ---- Phase 12: burn-fraction update -----------------------------
            yield SetPhase(11)
            yield self._charge(11, it)
            if st is not None:
                frac = (self.time + self.dt - st.burn_arrival) / 2.0e-6
                st.burn_frac = np.clip(
                    np.nan_to_num(frac, nan=0.0, neginf=0.0, posinf=1.0), 0.0, 1.0
                )
            assert sizes[11] == (8,)
            yield Allreduce(0.0, "sum", 8)

            # ---- Phase 13: hourglass filtering -------------------------------
            yield SetPhase(12)
            yield self._charge(12, it)
            assert sizes[12] == (4,)
            yield Allreduce(0.0, "max", 4)

            # ---- Phase 14: material strength models --------------------------
            yield SetPhase(13)
            yield self._charge(13, it)
            assert sizes[13] == (8,)
            yield Allreduce(0.0, "max", 8)

            # ---- Phase 15: diagnostics + broadcasts ---------------------------
            yield SetPhase(14)
            yield self._charge(14, it)
            assert sizes[14] == (4, 8)
            yield Allreduce(0.0, "sum", 4)
            total_energy = yield Allreduce(local_ke + local_ie, "sum", 8)
            yield Bcast(0 if self.rank == 0 else None, 0, 4)
            yield Bcast(0.0 if self.rank == 0 else None, 0, 8)

            self.time += self.dt
            self.diagnostics = {
                "total_mass": total_mass,
                "total_ke": total_ke,
                "total_ie": total_ie,
                "total_momentum_x": total_mom_x,
                "total_energy": total_energy,
                "dt": self.dt,
                "time": self.time,
            }

        yield MarkIteration(self.iterations)


assert len(PHASE_ALLREDUCE_SIZES) == NUM_PHASES
