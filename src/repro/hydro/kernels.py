"""Vectorised numerical kernels for the MiniKrak Lagrangian scheme.

All kernels operate on one rank's :class:`~repro.hydro.state.RankState`
arrays; nothing here communicates.  The scheme is a standard staggered-grid
(velocities on nodes, thermodynamics on cells) compatible-style update:

* corner forces from cell pressure + artificial viscosity, via the
  polygon-boundary formula (force on node k is ``(p+q)/2`` times the
  outward rotation of the segment joining its neighbouring vertices);
* von Neumann–Richtmyer scalar artificial viscosity on compression;
* viscous hourglass damping of the quad's zero-energy mode;
* internal energy updated from PdV work, keeping total energy conserved to
  discretisation error.
"""

from __future__ import annotations

import numpy as np

from repro.hydro.state import RankState

#: Hourglass mode pattern for a quad's four counter-clockwise corners.
_HG_PATTERN = np.array([1.0, -1.0, 1.0, -1.0])


def quad_vertex_fields(state: RankState) -> tuple[np.ndarray, np.ndarray]:
    """Vertex coordinates per local cell, shape ``(ncells, 4)`` each."""
    return state.x[state.cell_nodes], state.y[state.cell_nodes]


def compute_volumes(state: RankState) -> np.ndarray:
    """Signed shoelace areas of local cells (planar volume per unit depth)."""
    x, y = quad_vertex_fields(state)
    xn = np.roll(x, -1, axis=1)
    yn = np.roll(y, -1, axis=1)
    return 0.5 * np.sum(x * yn - xn * y, axis=1)


def characteristic_length(state: RankState) -> np.ndarray:
    """Per-cell characteristic length: area / longest diagonal.

    The conservative choice (shorter than ``sqrt(area)`` for distorted
    quads) keeps the CFL condition safe as cells shear.
    """
    x, y = quad_vertex_fields(state)
    d1 = np.hypot(x[:, 2] - x[:, 0], y[:, 2] - y[:, 0])
    d2 = np.hypot(x[:, 3] - x[:, 1], y[:, 3] - y[:, 1])
    area = np.abs(compute_volumes(state))
    longest = np.maximum(np.maximum(d1, d2), 1e-300)
    return area / longest


def volume_rate(state: RankState) -> np.ndarray:
    """Time derivative of cell volume from nodal velocities (shoelace rate)."""
    x, y = quad_vertex_fields(state)
    vx = state.vx[state.cell_nodes]
    vy = state.vy[state.cell_nodes]
    xn, yn = np.roll(x, -1, axis=1), np.roll(y, -1, axis=1)
    vxn, vyn = np.roll(vx, -1, axis=1), np.roll(vy, -1, axis=1)
    return 0.5 * np.sum(x * vyn - xn * vy + vx * yn - vxn * y, axis=1)


def scatter_corner_masses(state: RankState) -> np.ndarray:
    """Local nodal masses: a quarter of each cell's mass to each corner.

    Returns only this rank's *contribution*; shared nodes need the ghost sum
    (phase 4) to be complete.
    """
    contrib = np.zeros(state.num_nodes)
    quarter = 0.25 * state.cell_mass
    for k in range(4):
        np.add.at(contrib, state.cell_nodes[:, k], quarter)
    return contrib


def artificial_viscosity(
    state: RankState,
    quad_coeff: float = 2.0,
    linear_coeff: float = 0.25,
) -> np.ndarray:
    """von Neumann–Richtmyer scalar viscosity (active only on compression)."""
    vol = np.abs(compute_volumes(state))
    dvol = volume_rate(state)
    compressing = dvol < 0.0
    dv = np.where(compressing, -dvol / np.maximum(vol, 1e-300), 0.0)
    length = characteristic_length(state)
    du = dv * length  # velocity jump scale across the cell
    q = state.rho * (quad_coeff * du * du + linear_coeff * state.sound_speed * du)
    return np.where(compressing, q, 0.0)


def corner_forces(state: RankState, hourglass_coeff: float = 0.05) -> tuple[np.ndarray, np.ndarray]:
    """Nodal force contributions from local cells.

    Pressure + artificial-viscosity force on corner ``k`` of a
    counter-clockwise quad is ``(p+q)/2 · (y_{k+1} − y_{k−1},
    −(x_{k+1} − x_{k−1}))`` (outward).  A viscous hourglass force damps the
    quad's ``(+,−,+,−)`` zero-energy velocity mode, scaled by the cell's
    acoustic impedance so the damping is dimensionally a pressure.
    Returns only this rank's contribution; shared nodes need the ghost sum
    (phase 5).
    """
    x, y = quad_vertex_fields(state)
    p_tot = state.pressure + state.viscosity
    xn, yn = np.roll(x, -1, axis=1), np.roll(y, -1, axis=1)
    xp, yp = np.roll(x, 1, axis=1), np.roll(y, 1, axis=1)
    fx_c = 0.5 * p_tot[:, None] * (yn - yp)
    fy_c = 0.5 * p_tot[:, None] * (-(xn - xp))

    if hourglass_coeff > 0.0:
        vx = state.vx[state.cell_nodes]
        vy = state.vy[state.cell_nodes]
        hg_x = vx @ _HG_PATTERN * 0.25
        hg_y = vy @ _HG_PATTERN * 0.25
        area = np.abs(compute_volumes(state))
        impedance = state.rho * np.maximum(state.sound_speed, 1.0) * np.sqrt(
            np.maximum(area, 1e-300)
        )
        scale = hourglass_coeff * impedance
        fx_c -= (scale * hg_x)[:, None] * _HG_PATTERN
        fy_c -= (scale * hg_y)[:, None] * _HG_PATTERN

    fx = np.zeros(state.num_nodes)
    fy = np.zeros(state.num_nodes)
    for k in range(4):
        np.add.at(fx, state.cell_nodes[:, k], fx_c[:, k])
        np.add.at(fy, state.cell_nodes[:, k], fy_c[:, k])
    return fx, fy


def advance_nodes(state: RankState, dt: float) -> None:
    """Leapfrog velocity/position update with rigid-wall boundary conditions.

    ``fix_vx`` defaults to the rotation-axis nodes (reflective axis); test
    problems close the domain by extending the masks.
    """
    mass = np.maximum(state.node_mass, 1e-300)
    state.vx += dt * state.fx / mass
    state.vy += dt * state.fy / mass
    state.vx[state.fix_vx] = 0.0
    state.vy[state.fix_vy] = 0.0
    state.x += dt * state.vx
    state.y += dt * state.vy


def update_energy(state: RankState, old_volume: np.ndarray, new_volume: np.ndarray) -> None:
    """PdV internal-energy update: ``de = −(p+q)·ΔV / m_cell``."""
    dvol = new_volume - old_volume
    de = -(state.pressure + state.viscosity) * dvol / np.maximum(state.cell_mass, 1e-300)
    state.energy = np.maximum(state.energy + de, 0.0)


def stable_dt(state: RankState, cfl: float = 0.25, max_dt: float = 1e-5) -> float:
    """Local CFL timestep: ``cfl · length / (c + 4·|du|)`` minimised over cells."""
    length = characteristic_length(state)
    vol = np.abs(compute_volumes(state))
    dvol = volume_rate(state)
    du = np.abs(dvol) / np.maximum(vol, 1e-300) * length
    speed = np.maximum(state.sound_speed + 4.0 * du, 1.0)
    dt = cfl * np.min(length / speed)
    return float(min(dt, max_dt))


def kinetic_energy(state: RankState, count_shared_once: bool = True) -> float:
    """This rank's kinetic energy; shared nodes counted only where owned."""
    ke = 0.5 * state.node_mass * (state.vx**2 + state.vy**2)
    if count_shared_once:
        ke = ke[state.node_owner == state.rank]
    return float(ke.sum())


def internal_energy(state: RankState) -> float:
    """This rank's total internal energy (cell-mass-weighted)."""
    return float((state.cell_mass * state.energy).sum())


def total_mass(state: RankState) -> float:
    """This rank's total cell mass (invariant in a Lagrangian code)."""
    return float(state.cell_mass.sum())
