"""Programmed burn: the detonation wave that drives the simulation.

"An explosive detonator is placed on the axis of rotation, slightly below
center" (Section 2.1).  Programmed burn prescribes a detonation arrival time
per HE cell from the distance to the detonator divided by the detonation
speed; the burn fraction then ramps from 0 to 1 over the cell's burn time.
This is the standard engineering treatment and gives the performance model a
material whose workload evolves over the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.deck import HE_GAS


@dataclass(frozen=True)
class ProgrammedBurn:
    """Detonation schedule for the HE cells of a deck.

    Attributes
    ----------
    detonation_speed:
        Detonation wave speed (m/s).
    ramp_time:
        Time for a cell's burn fraction to go 0 → 1 once the wave arrives.
    arrival_time:
        Per-cell wave arrival times (``inf`` for non-HE cells).
    """

    detonation_speed: float
    ramp_time: float
    arrival_time: np.ndarray

    def __post_init__(self) -> None:
        if self.detonation_speed <= 0:
            raise ValueError("detonation_speed must be positive")
        if self.ramp_time <= 0:
            raise ValueError("ramp_time must be positive")

    @classmethod
    def from_deck(
        cls,
        cell_centroids: np.ndarray,
        cell_material: np.ndarray,
        detonator_xy: tuple[float, float],
        detonation_speed: float = 7000.0,
        ramp_time: float = 2.0e-6,
    ) -> "ProgrammedBurn":
        """Build the schedule from cell centroids and the detonator position."""
        cell_centroids = np.asarray(cell_centroids, dtype=np.float64)
        dx = cell_centroids[:, 0] - detonator_xy[0]
        dy = cell_centroids[:, 1] - detonator_xy[1]
        dist = np.hypot(dx, dy)
        arrival = np.where(
            np.asarray(cell_material) == HE_GAS, dist / detonation_speed, np.inf
        )
        return cls(
            detonation_speed=detonation_speed,
            ramp_time=ramp_time,
            arrival_time=arrival,
        )

    def burn_fraction(self, time: float) -> np.ndarray:
        """Burn fraction per cell at simulation ``time`` (clipped to [0, 1])."""
        with np.errstate(invalid="ignore"):
            frac = (time - self.arrival_time) / self.ramp_time
        return np.clip(np.nan_to_num(frac, nan=0.0, neginf=0.0, posinf=1.0), 0.0, 1.0)

    def actively_burning(self, time: float) -> np.ndarray:
        """Boolean mask of cells whose burn fraction is strictly in (0, 1)."""
        f = self.burn_fraction(time)
        return (f > 0.0) & (f < 1.0)
