"""Per-rank distributed state: local mesh views and neighbour exchange links.

Each rank holds the cells assigned to it by the partition, the union of
their nodes, and — for every neighbouring rank — the list of *shared* nodes
in a canonical (global-id-sorted) order so both sides of an exchange agree
on message layout without any negotiation, exactly like a production code's
communication lists.

Node ownership follows the paper's rule: every shared ("ghost") node is
local to exactly one processor (here: the minimum incident rank) and remote
to the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hydro.burn import ProgrammedBurn
from repro.hydro.materials import (
    KRAK_MATERIAL_MODELS,
    initial_density,
    initial_energy,
)
from repro.mesh.deck import InputDeck
from repro.mesh.geometry import cell_areas, cell_centroids
from repro.mesh.ghost import node_owners
from repro.partition.base import Partition


@dataclass
class NeighborLink:
    """Exchange metadata between this rank and one neighbour.

    Attributes
    ----------
    nbr_rank:
        The neighbouring rank id.
    shared_local_idx:
        Local node indices of the shared nodes, ordered by global node id
        (both sides use the same order).
    owner_of_shared:
        Owning rank of each shared node (global ownership function).
    """

    nbr_rank: int
    shared_local_idx: np.ndarray
    owner_of_shared: np.ndarray

    @property
    def num_shared(self) -> int:
        """Number of shared nodes on this link."""
        return int(self.shared_local_idx.shape[0])

    def owned_by(self, rank: int) -> np.ndarray:
        """Mask of shared nodes owned by ``rank``."""
        return self.owner_of_shared == rank


@dataclass
class RankState:
    """All state one simulated rank holds for the hydro computation."""

    rank: int
    #: Global ids of local cells / nodes (both ascending).
    cells_g: np.ndarray
    nodes_g: np.ndarray
    #: Cell→node connectivity in local node indices, shape (ncells, 4).
    cell_nodes: np.ndarray
    #: Material id per local cell.
    material: np.ndarray
    #: Owner rank per local node.
    node_owner: np.ndarray
    #: Exchange links, sorted by neighbour rank.
    links: list[NeighborLink]

    # --- node fields ---
    x: np.ndarray = field(default=None)  # type: ignore[assignment]
    y: np.ndarray = field(default=None)  # type: ignore[assignment]
    vx: np.ndarray = field(default=None)  # type: ignore[assignment]
    vy: np.ndarray = field(default=None)  # type: ignore[assignment]
    node_mass: np.ndarray = field(default=None)  # type: ignore[assignment]
    fx: np.ndarray = field(default=None)  # type: ignore[assignment]
    fy: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Axis-of-rotation nodes (x = 0): reflective boundary, vx pinned to 0.
    on_axis: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Rigid-wall masks: nodes whose x / y velocity is pinned to zero.  By
    #: default ``fix_vx`` is the rotation axis and ``fix_vy`` is empty; test
    #: problems (shock tubes, pistons) close the box by widening these.
    fix_vx: np.ndarray = field(default=None)  # type: ignore[assignment]
    fix_vy: np.ndarray = field(default=None)  # type: ignore[assignment]

    # --- cell fields ---
    cell_mass: np.ndarray = field(default=None)  # type: ignore[assignment]
    volume: np.ndarray = field(default=None)  # type: ignore[assignment]
    rho: np.ndarray = field(default=None)  # type: ignore[assignment]
    energy: np.ndarray = field(default=None)  # type: ignore[assignment]
    pressure: np.ndarray = field(default=None)  # type: ignore[assignment]
    viscosity: np.ndarray = field(default=None)  # type: ignore[assignment]
    sound_speed: np.ndarray = field(default=None)  # type: ignore[assignment]
    burn_frac: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Per-cell programmed-burn arrival times.
    burn_arrival: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def num_cells(self) -> int:
        """Local cell count."""
        return int(self.cells_g.shape[0])

    @property
    def num_nodes(self) -> int:
        """Local node count (including shared nodes)."""
        return int(self.nodes_g.shape[0])

    def material_counts(self, num_materials: int) -> np.ndarray:
        """Local cells per material."""
        return np.bincount(self.material, minlength=num_materials)[:num_materials]


def _shared_node_pairs(
    deck: InputDeck, partition: Partition
) -> dict[tuple[int, int], np.ndarray]:
    """Map every rank pair sharing at least one node to its shared node ids.

    Built from node→rank incidence (any shared node, including corner-only
    contacts, so the additive ghost sums are globally exact).
    """
    mesh = deck.mesh
    nodes = mesh.cell_nodes.ravel()
    ranks = np.repeat(partition.cell_rank, 4)
    pairs_nr = np.unique(nodes * np.int64(partition.num_ranks) + ranks)
    node_of = pairs_nr // partition.num_ranks
    rank_of = pairs_nr % partition.num_ranks

    out: dict[tuple[int, int], list[int]] = {}
    # Group consecutive runs of the same node (pairs_nr is sorted).
    start = 0
    n = node_of.shape[0]
    while start < n:
        end = start + 1
        while end < n and node_of[end] == node_of[start]:
            end += 1
        if end - start > 1:
            rs = rank_of[start:end]
            gid = int(node_of[start])
            for i in range(rs.shape[0]):
                for j in range(i + 1, rs.shape[0]):
                    out.setdefault((int(rs[i]), int(rs[j])), []).append(gid)
        start = end
    return {k: np.array(v, dtype=np.int64) for k, v in out.items()}


def build_rank_states(
    deck: InputDeck,
    partition: Partition,
    models=KRAK_MATERIAL_MODELS,
    detonation_speed: float = 7000.0,
) -> list[RankState]:
    """Construct the full distributed state for every rank.

    Initial conditions: nodes at mesh coordinates, zero velocity, reference
    density/energy per material, cell masses from planar cell areas (the
    solver runs in planar 2-D; see DESIGN.md for the rotation note).
    """
    mesh = deck.mesh
    if partition.num_cells != mesh.num_cells:
        raise ValueError("partition does not match the deck's mesh")
    owners = node_owners(mesh, partition.cell_rank)
    areas = np.abs(cell_areas(mesh))
    centroids = cell_centroids(mesh)
    burn = ProgrammedBurn.from_deck(
        centroids, deck.cell_material, deck.detonator_xy, detonation_speed
    )
    axis_x = float(mesh.node_x.min())

    shared = _shared_node_pairs(deck, partition)

    states: list[RankState] = []
    for rank in range(partition.num_ranks):
        cells_g = partition.cells_of(rank)
        if cells_g.size == 0:
            raise ValueError(f"rank {rank} received no cells")
        cn_global = mesh.cell_nodes[cells_g]
        nodes_g = np.unique(cn_global)
        cell_nodes_local = np.searchsorted(nodes_g, cn_global)

        links = []
        for (a, b), gids in shared.items():
            if rank not in (a, b):
                continue
            nbr = b if rank == a else a
            local_idx = np.searchsorted(nodes_g, gids)
            links.append(
                NeighborLink(
                    nbr_rank=nbr,
                    shared_local_idx=local_idx,
                    owner_of_shared=owners[gids],
                )
            )
        links.sort(key=lambda lk: lk.nbr_rank)

        mat = deck.cell_material[cells_g]
        rho = initial_density(mat, models)
        vol = areas[cells_g].copy()
        st = RankState(
            rank=rank,
            cells_g=cells_g,
            nodes_g=nodes_g,
            cell_nodes=cell_nodes_local,
            material=mat,
            node_owner=owners[nodes_g],
            links=links,
            x=mesh.node_x[nodes_g].copy(),
            y=mesh.node_y[nodes_g].copy(),
            vx=np.zeros(nodes_g.shape[0]),
            vy=np.zeros(nodes_g.shape[0]),
            node_mass=np.zeros(nodes_g.shape[0]),
            fx=np.zeros(nodes_g.shape[0]),
            fy=np.zeros(nodes_g.shape[0]),
            on_axis=np.abs(mesh.node_x[nodes_g] - axis_x) < 1e-12,
            fix_vx=np.abs(mesh.node_x[nodes_g] - axis_x) < 1e-12,
            fix_vy=np.zeros(nodes_g.shape[0], dtype=bool),
            cell_mass=rho * vol,
            volume=vol,
            rho=rho.copy(),
            energy=initial_energy(mat, models),
            pressure=np.zeros(cells_g.shape[0]),
            viscosity=np.zeros(cells_g.shape[0]),
            sound_speed=np.zeros(cells_g.shape[0]),
            burn_frac=np.zeros(cells_g.shape[0]),
            burn_arrival=burn.arrival_time[cells_g].copy(),
        )
        states.append(st)
    return states
