"""Per-rank workload and messaging census for the execution-driven simulation.

The census captures, for every rank, exactly what the discrete-event
simulator needs to charge costs without running the numerics:

* the material census (cells per material) for compute charges;
* for phase 2, per-neighbour boundary-exchange structure: faces per
  *exchange group* on each side (identical materials — the two aluminums —
  are combined, as Krak does), plus the count of ghost nodes touching more
  than one material (they enlarge the first two messages of each sextet);
* for phases 4/5/7, per-neighbour ghost-node counts split by ownership.

The same census drives both timing-only and functional runs, so the two
modes are communication-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.hydro.burn import ProgrammedBurn
from repro.mesh.connectivity import FaceTable, build_face_table
from repro.mesh.deck import ALUMINUM_INNER, ALUMINUM_OUTER, FOAM, HE_GAS, InputDeck, NUM_MATERIALS
from repro.mesh.geometry import cell_centroids
from repro.mesh.ghost import BoundaryCensus, boundary_census, node_owners
from repro.partition.base import Partition
from repro.util import bincount_fixed

#: Material id → boundary-exchange group ("Identical materials (such as the
#: two aluminum materials in our input deck) are treated as one during
#: boundary exchanges", Section 4.1).
EXCHANGE_GROUP = {HE_GAS: 0, ALUMINUM_INNER: 1, FOAM: 2, ALUMINUM_OUTER: 1}
NUM_EXCHANGE_GROUPS = 3


@dataclass(frozen=True)
class BoundarySide:
    """One side's view of a pair boundary for the phase-2 exchange.

    Attributes
    ----------
    groups:
        Tuple of ``(group_id, faces, multi_material_nodes)`` for every
        exchange group with at least one face on this side.
    total_faces:
        All shared faces on the boundary (material-independent final step).
    """

    groups: tuple
    total_faces: int


@dataclass(frozen=True)
class GhostLink:
    """Ghost-node exchange counts between a rank and one neighbour."""

    nbr_rank: int
    #: Shared nodes owned by this rank ("local" in the paper's wording).
    owned_by_me: int
    #: Shared nodes owned by anyone else ("remote").
    not_owned_by_me: int
    #: The neighbour's counts (needed to size the matching receives).
    owned_by_nbr: int
    not_owned_by_nbr: int

    @property
    def num_shared(self) -> int:
        """Total shared nodes on this link."""
        return self.owned_by_me + self.not_owned_by_me


@dataclass(frozen=True)
class BoundaryLink:
    """Phase-2 boundary-exchange structure between a rank and one neighbour."""

    nbr_rank: int
    mine: BoundarySide
    theirs: BoundarySide


@dataclass(frozen=True)
class WorkloadCensus:
    """Everything the simulator charges, for every rank."""

    num_ranks: int
    #: Cells per (rank, material).
    material_counts: np.ndarray
    #: rank → list of BoundaryLink, sorted by neighbour (face-sharing pairs).
    boundary_links: tuple
    #: rank → list of GhostLink, sorted by neighbour (node-sharing pairs).
    ghost_links: tuple
    #: The underlying face-based census (reused by the mesh-specific model).
    face_census: BoundaryCensus

    def work_vector(self, rank: int) -> np.ndarray:
        """Material census of ``rank`` as a float work vector."""
        return self.material_counts[rank].astype(np.float64)

    def neighbors(self, rank: int) -> list:
        """Neighbour ranks with at least one shared face."""
        return [bl.nbr_rank for bl in self.boundary_links[rank]]


def _group_faces(faces_by_material: np.ndarray) -> np.ndarray:
    """Collapse per-material face counts into exchange groups."""
    out = np.zeros(NUM_EXCHANGE_GROUPS, dtype=np.int64)
    for mat, grp in EXCHANGE_GROUP.items():
        out[grp] += int(faces_by_material[mat])
    return out


def _multi_by_group(
    census_pair, side: int, group_faces: np.ndarray
) -> np.ndarray:
    """Distribute a side's multi-material node count over its active groups.

    The face census records how many ghost nodes touch more than one
    material per side; each such node enlarges the messages of the groups it
    borders.  We attribute each multi-material node to every active group
    (a node bordering two materials adds 12 bytes to both sextets), split
    proportionally when exact attribution is unavailable — the totals match
    the census exactly.
    """
    total_multi = int(census_pair.multi_material_nodes[side])
    active = np.flatnonzero(group_faces > 0)
    out = np.zeros(NUM_EXCHANGE_GROUPS, dtype=np.int64)
    if total_multi == 0 or active.size == 0:
        return out
    # A node on a material interface borders exactly the adjacent groups;
    # with ≥2 active groups each multi node belongs to 2 of them.  Spread
    # evenly over active groups, keeping integer totals.
    share = np.zeros(NUM_EXCHANGE_GROUPS, dtype=np.float64)
    share[active] = 1.0 / active.size
    counts = np.floor(total_multi * share).astype(np.int64)
    remainder = total_multi - int(counts[active].sum())
    for idx in active[:remainder]:
        counts[idx] += 1
    return counts


def build_workload_census(
    deck: InputDeck,
    partition: Partition,
    faces: FaceTable | None = None,
) -> WorkloadCensus:
    """Build the full :class:`WorkloadCensus` for a deck + partition."""
    mesh = deck.mesh
    if faces is None:
        faces = build_face_table(mesh)
    census = boundary_census(
        mesh, faces, deck.cell_material, partition.cell_rank, partition.num_ranks
    )
    material_counts = partition.material_census(deck.cell_material, NUM_MATERIALS)

    # --- phase-2 boundary links (face-sharing pairs) -------------------------
    boundary_links: list[list[BoundaryLink]] = [[] for _ in range(partition.num_ranks)]
    for (a, b), pb in sorted(census.pairs.items()):
        sides = []
        for side in (0, 1):
            gf = _group_faces(pb.faces_by_material[side])
            gm = _multi_by_group(pb, side, gf)
            groups = tuple(
                (int(g), int(gf[g]), int(gm[g])) for g in range(NUM_EXCHANGE_GROUPS) if gf[g] > 0
            )
            sides.append(BoundarySide(groups=groups, total_faces=pb.num_faces))
        boundary_links[a].append(BoundaryLink(nbr_rank=b, mine=sides[0], theirs=sides[1]))
        boundary_links[b].append(BoundaryLink(nbr_rank=a, mine=sides[1], theirs=sides[0]))
    for links in boundary_links:
        links.sort(key=lambda bl: bl.nbr_rank)

    # --- ghost links (node-sharing pairs, global exactness) ------------------
    owners = node_owners(mesh, partition.cell_rank)
    nodes = mesh.cell_nodes.ravel()
    ranks = np.repeat(partition.cell_rank, 4)
    pairs_nr = np.unique(nodes * np.int64(partition.num_ranks) + ranks)
    node_of = pairs_nr // partition.num_ranks
    rank_of = pairs_nr % partition.num_ranks

    pair_counts: dict[tuple[int, int], list[int]] = {}
    start = 0
    n = node_of.shape[0]
    while start < n:
        end = start + 1
        while end < n and node_of[end] == node_of[start]:
            end += 1
        if end - start > 1:
            rs = rank_of[start:end]
            owner = int(owners[node_of[start]])
            for i in range(rs.shape[0]):
                for j in range(i + 1, rs.shape[0]):
                    key = (int(rs[i]), int(rs[j]))
                    rec = pair_counts.setdefault(key, [0, 0, 0])
                    rec[0] += 1  # total shared
                    if owner == key[0]:
                        rec[1] += 1  # owned by lower rank
                    elif owner == key[1]:
                        rec[2] += 1  # owned by higher rank
        start = end

    ghost_links: list[list[GhostLink]] = [[] for _ in range(partition.num_ranks)]
    for (a, b), (tot, own_a, own_b) in sorted(pair_counts.items()):
        ghost_links[a].append(
            GhostLink(
                nbr_rank=b,
                owned_by_me=own_a,
                not_owned_by_me=tot - own_a,
                owned_by_nbr=own_b,
                not_owned_by_nbr=tot - own_b,
            )
        )
        ghost_links[b].append(
            GhostLink(
                nbr_rank=a,
                owned_by_me=own_b,
                not_owned_by_me=tot - own_b,
                owned_by_nbr=own_a,
                not_owned_by_nbr=tot - own_a,
            )
        )
    for links in ghost_links:
        links.sort(key=lambda gl: gl.nbr_rank)

    return WorkloadCensus(
        num_ranks=partition.num_ranks,
        material_counts=material_counts,
        boundary_links=tuple(tuple(l) for l in boundary_links),
        ghost_links=tuple(tuple(l) for l in ghost_links),
        face_census=census,
    )


#: Integer scale for per-cell partitioner weights (resolution 1/8 cell).
CELL_WEIGHT_SCALE = 8


@dataclass(frozen=True)
class DynamicCensus:
    """A time-parameterised workload census.

    The paper's central observation is that Krak's workload *evolves*: the
    programmed burn front moves through the HE material, so per-cell cost is
    a function of simulation time and any static partition degrades.  This
    wrapper binds a static :class:`WorkloadCensus` to a
    :class:`~repro.hydro.burn.ProgrammedBurn` schedule: at time ``t``,
    actively-burning cells are charged ``burn_multiplier`` times their
    static cost, while the communication structure (boundary/ghost links —
    a function of the partition, not of time) is unchanged.

    ``census_at(None)`` is the static fast path and returns the underlying
    census object itself, so static callers pay nothing.
    """

    deck: InputDeck
    partition: Partition
    burn: ProgrammedBurn
    base: WorkloadCensus
    #: Cost multiplier for cells whose burn fraction lies strictly in (0, 1).
    burn_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.burn_multiplier < 1.0:
            raise ValueError("burn_multiplier must be >= 1")
        if self.base.num_ranks != self.partition.num_ranks:
            raise ValueError("base census does not match the partition")

    @classmethod
    def build(
        cls,
        deck: InputDeck,
        partition: Partition,
        burn: ProgrammedBurn | None = None,
        burn_multiplier: float = 4.0,
        faces: FaceTable | None = None,
        base: WorkloadCensus | None = None,
    ) -> "DynamicCensus":
        """Bind ``deck`` + ``partition`` to a burn schedule.

        ``burn`` defaults to the deck's own programmed burn (detonator at
        ``deck.detonator_xy``); ``base`` defaults to the freshly built
        static census.
        """
        if burn is None:
            burn = ProgrammedBurn.from_deck(
                cell_centroids(deck.mesh), deck.cell_material, deck.detonator_xy
            )
        if base is None:
            base = build_workload_census(deck, partition, faces)
        return cls(
            deck=deck,
            partition=partition,
            burn=burn,
            base=base,
            burn_multiplier=burn_multiplier,
        )

    def burning_cells_by_rank(self, t: float) -> np.ndarray:
        """Actively-burning cell count per rank at time ``t``."""
        mask = self.burn.actively_burning(t)
        return bincount_fixed(
            self.partition.cell_rank[mask], self.partition.num_ranks
        )

    def census_at(self, t: float | None) -> WorkloadCensus:
        """The workload census at simulation time ``t``.

        ``t=None`` (or any time with no actively-burning cell) returns the
        static base census unchanged; otherwise the HE column of the
        material census is inflated by ``(burn_multiplier - 1)`` effective
        cells per burning cell.  Message structure never changes — only the
        compute charge evolves.
        """
        if t is None or self.burn_multiplier == 1.0:
            return self.base
        burning = self.burning_cells_by_rank(t)
        if not burning.any():
            return self.base
        counts = self.base.material_counts.astype(np.float64, copy=True)
        counts[:, HE_GAS] += (self.burn_multiplier - 1.0) * burning
        return replace(self.base, material_counts=counts)

    def work_by_rank(self, t: float | None) -> np.ndarray:
        """Effective (multiplier-weighted) cells per rank at time ``t``."""
        return self.census_at(t).material_counts.sum(axis=1).astype(np.float64)

    def cell_weights(self, t: float) -> np.ndarray:
        """Integer per-cell work weights at ``t`` (for weighted partitioners).

        Weights are scaled by :data:`CELL_WEIGHT_SCALE` so fractional
        multipliers survive the integer vertex weights of the partition
        substrate.
        """
        weights = np.full(self.deck.num_cells, CELL_WEIGHT_SCALE, dtype=np.int64)
        mask = self.burn.actively_burning(t)
        weights[mask] = int(round(self.burn_multiplier * CELL_WEIGHT_SCALE))
        return weights

    def with_partition(
        self, partition: Partition, faces: FaceTable | None = None
    ) -> "DynamicCensus":
        """Rebind to a new partition (used after mid-run repartitioning)."""
        return DynamicCensus(
            deck=self.deck,
            partition=partition,
            burn=self.burn,
            base=build_workload_census(self.deck, partition, faces),
            burn_multiplier=self.burn_multiplier,
        )
