"""MiniKrak: a 2-D multi-material Lagrangian hydrodynamics mini-app.

This is the reproduction's stand-in for the proprietary 270 kLoC Krak code.
It implements what the paper *describes*: a Lagrangian scheme on a
quadrilateral spatial grid (cells → faces → nodes), one material per cell,
programmed-burn high explosive, and an iteration built from the paper's
exact 15 phases (Table 1) with boundary exchanges, ghost-node updates, and
collectives in the documented places.

Two execution modes share the same phase/communication structure:

* **functional** — real vectorised numerics per rank with actual ghost-node
  data exchange (used by correctness tests and small demos);
* **census** (timing-only) — compute time charged from the per-rank
  material census through the machine cost model, messages carry sizes only
  (used to "measure" iteration times at scale).
"""

from repro.hydro.materials import (
    MaterialModel,
    KRAK_MATERIAL_MODELS,
    pressure_and_sound_speed,
)
from repro.hydro.burn import ProgrammedBurn
from repro.hydro.state import RankState, build_rank_states, NeighborLink
from repro.hydro.workload import DynamicCensus, WorkloadCensus, build_workload_census
from repro.hydro.dynamic import (
    REPARTITION_PHASE,
    DynamicConfig,
    DynamicController,
    DynamicRunInfo,
    IterationRecord,
)
from repro.hydro.driver import (
    KrakRun,
    MeasuredIteration,
    run_krak,
    measure_iteration_time,
)

__all__ = [
    "MaterialModel",
    "KRAK_MATERIAL_MODELS",
    "pressure_and_sound_speed",
    "ProgrammedBurn",
    "RankState",
    "build_rank_states",
    "NeighborLink",
    "DynamicCensus",
    "WorkloadCensus",
    "build_workload_census",
    "REPARTITION_PHASE",
    "DynamicConfig",
    "DynamicController",
    "DynamicRunInfo",
    "IterationRecord",
    "KrakRun",
    "MeasuredIteration",
    "run_krak",
    "measure_iteration_time",
]
