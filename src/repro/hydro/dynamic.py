"""Dynamic-workload coordination for simulated Krak runs.

The burn front makes per-cell cost a function of time, so a dynamic run
charges iteration ``k`` against ``census_at(t_k)`` instead of one static
census.  A :class:`DynamicController` is shared by every rank program: at
each iteration boundary it produces (exactly once, cached by iteration
index) the :class:`DynamicStep` all ranks act on — the effective census at
``t_k`` and, when the configured policy fires, a repartition event.

A repartition is charged to the run the way a real code pays for it:

* an allgather of the per-rank census (modelled as a gather + broadcast
  through the simulated collectives — the information everyone needs to
  agree on the new partition);
* point-to-point cell-migration messages sized by the
  :func:`~repro.partition.dynamic.migration_matrix` flows at
  ``migration_bytes_per_cell`` bytes per moved cell.

Determinism: iterations end in global collectives, so every rank reaches
the same iteration boundary with the same simulation time; the first rank
to ask for a step computes it and the rest replay the cached value.  The
engine's collective rendezvous guarantees no rank can start iteration
``k+1`` before all ranks have consumed step ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hydro.burn import ProgrammedBurn
from repro.hydro.workload import DynamicCensus, WorkloadCensus
from repro.machine.costdb import NUM_PHASES
from repro.mesh.connectivity import FaceTable, build_face_table
from repro.mesh.deck import NUM_MATERIALS, InputDeck
from repro.mesh.geometry import cell_centroids
from repro.partition.base import Partition
from repro.partition.dynamic import (
    NeverPolicy,
    RepartitionPolicy,
    migration_matrix,
    weighted_repartition,
)
from repro.partition.metrics import imbalance

#: Trace phase index for repartition time (one past the 15 Krak phases).
REPARTITION_PHASE = NUM_PHASES


@dataclass(frozen=True)
class DynamicConfig:
    """Everything a dynamic run needs beyond the static inputs.

    Attributes
    ----------
    policy:
        When to repartition (:mod:`repro.partition.dynamic` policies).
    burn_multiplier:
        Cost multiplier for actively-burning cells.
    dt:
        Census-mode timestep: iteration ``k`` is charged at ``t = k · dt``.
        The default sweeps the burn front across a paper deck in tens of
        iterations, which is what repartition-cadence studies want.
    detonation_speed, ramp_time:
        Programmed-burn parameters (see :class:`~repro.hydro.burn.ProgrammedBurn`).
    migration_bytes_per_cell:
        Payload per migrated cell (state + connectivity) for repartition
        cost charging.
    partition_seed:
        Seed for the weighted repartitioner.
    """

    policy: RepartitionPolicy = field(default_factory=NeverPolicy)
    burn_multiplier: float = 4.0
    dt: float = 1.0e-5
    detonation_speed: float = 7000.0
    ramp_time: float = 2.0e-5
    migration_bytes_per_cell: int = 256
    partition_seed: int = 0

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.migration_bytes_per_cell < 0:
            raise ValueError("migration_bytes_per_cell must be non-negative")


@dataclass(frozen=True)
class MigrationPlan:
    """One repartition event, as the rank programs must charge it."""

    #: Cells moving from (old) rank a to (new) rank b; diagonal is zero.
    matrix: np.ndarray
    bytes_per_cell: int
    #: Per-rank census contribution gathered to the root.
    gather_bytes: int
    #: Full census broadcast back to everyone.
    bcast_bytes: int

    @property
    def cells_moved(self) -> int:
        """Total migrated cells."""
        return int(self.matrix.sum())


@dataclass(frozen=True)
class DynamicStep:
    """What every rank applies at the start of one iteration."""

    index: int
    time: float
    #: Census to charge this iteration against (links + effective work).
    census: WorkloadCensus
    #: Weighted load imbalance before any repartition this step.
    imbalance_before: float
    #: Weighted load imbalance actually charged (after repartition, if any).
    imbalance: float
    #: Set when this step repartitioned; ``None`` otherwise.
    migration: MigrationPlan | None = None


@dataclass(frozen=True)
class IterationRecord:
    """One point of the imbalance trajectory."""

    index: int
    time: float
    imbalance_before: float
    imbalance: float
    repartitioned: bool
    cells_moved: int


@dataclass(frozen=True)
class DynamicRunInfo:
    """Summary of a dynamic run, attached to :class:`~repro.hydro.driver.KrakRun`."""

    policy: str
    burn_multiplier: float
    dt: float
    records: tuple

    @property
    def num_repartitions(self) -> int:
        """How many iterations actually repartitioned."""
        return sum(1 for r in self.records if r.repartitioned)

    @property
    def cells_moved(self) -> int:
        """Total cells migrated across all repartitions."""
        return sum(r.cells_moved for r in self.records)

    def imbalance_series(self) -> tuple:
        """``(times, imbalances)`` of the charged per-iteration imbalance."""
        return (
            [r.time for r in self.records],
            [r.imbalance for r in self.records],
        )


class DynamicController:
    """Shared per-run coordinator of censuses and repartition events."""

    def __init__(
        self,
        deck: InputDeck,
        partition: Partition,
        config: DynamicConfig,
        faces: FaceTable | None = None,
        base_census: WorkloadCensus | None = None,
        force_repartition=None,
    ) -> None:
        self.config = config
        #: Optional ``iteration -> bool`` override: when it returns True the
        #: controller repartitions regardless of the policy (node churn —
        #: see :mod:`repro.perturb`).  The policy is still evaluated first,
        #: so its internal state advances identically to an unforced run.
        self._force = force_repartition
        self.num_ranks = partition.num_ranks
        self._faces = faces if faces is not None else build_face_table(deck.mesh)
        burn = ProgrammedBurn.from_deck(
            cell_centroids(deck.mesh),
            deck.cell_material,
            deck.detonator_xy,
            detonation_speed=config.detonation_speed,
            ramp_time=config.ramp_time,
        )
        self._dyn = DynamicCensus.build(
            deck,
            partition,
            burn=burn,
            burn_multiplier=config.burn_multiplier,
            faces=self._faces,
            base=base_census,
        )
        self._steps: dict[int, DynamicStep] = {}

    @property
    def partition(self) -> Partition:
        """The currently active partition."""
        return self._dyn.partition

    def step(self, iteration: int) -> DynamicStep:
        """The (cached) dynamic step for ``iteration``.

        The first caller computes it — evaluating the policy against the
        weighted load and, when it fires, building the new weighted
        partition plus its migration plan; later callers (the other ranks)
        replay the cached value, so all ranks act identically.
        """
        cached = self._steps.get(iteration)
        if cached is not None:
            return cached

        t = iteration * self.config.dt
        census = self._dyn.census_at(t)
        work = census.material_counts.sum(axis=1).astype(np.float64)
        imbalance_before = imbalance(work)
        migration = None
        fired = self.config.policy.should_repartition(iteration, work)
        if self._force is not None and self._force(iteration):
            fired = True
        if fired:
            dyn = self._dyn
            new_partition = weighted_repartition(
                dyn.deck.mesh,
                dyn.cell_weights(t),
                self.num_ranks,
                faces=self._faces,
                seed=self.config.partition_seed,
            )
            flows = migration_matrix(dyn.partition, new_partition)
            if flows.any():
                self._dyn = dyn.with_partition(new_partition, self._faces)
                migration = MigrationPlan(
                    matrix=flows,
                    bytes_per_cell=self.config.migration_bytes_per_cell,
                    gather_bytes=NUM_MATERIALS * 8,
                    bcast_bytes=self.num_ranks * NUM_MATERIALS * 8,
                )
                census = self._dyn.census_at(t)
                work = census.material_counts.sum(axis=1).astype(np.float64)

        step = DynamicStep(
            index=iteration,
            time=t,
            census=census,
            imbalance_before=imbalance_before,
            imbalance=imbalance(work),
            migration=migration,
        )
        self._steps[iteration] = step
        return step

    def run_info(self) -> DynamicRunInfo:
        """Imbalance trajectory + repartition tally for the finished run."""
        records = tuple(
            IterationRecord(
                index=s.index,
                time=s.time,
                imbalance_before=s.imbalance_before,
                imbalance=s.imbalance,
                repartitioned=s.migration is not None,
                cells_moved=s.migration.cells_moved if s.migration else 0,
            )
            for _, s in sorted(self._steps.items())
        )
        return DynamicRunInfo(
            policy=self.config.policy.name,
            burn_multiplier=self.config.burn_multiplier,
            dt=self.config.dt,
            records=records,
        )
