"""Top-level MiniKrak runs: "measure" iteration times on the simulated machine.

``run_krak`` executes the full pipeline (deck → partition → census →
discrete-event run) and returns the trace plus application diagnostics;
``measure_iteration_time`` is the convenience most benchmarks use — it
averages the steady-state iterations, skipping a warm-up, exactly how one
times a production code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.phases import KrakProgram
from repro.hydro.state import RankState, build_rank_states
from repro.hydro.workload import WorkloadCensus, build_workload_census
from repro.machine.cluster import ClusterConfig, es45_like_cluster
from repro.machine.costdb import NUM_PHASES
from repro.mesh.connectivity import FaceTable
from repro.mesh.deck import InputDeck
from repro.partition.base import Partition
from repro.simmpi.engine import Engine, SimResult


@dataclass(frozen=True)
class KrakRun:
    """Everything produced by one simulated Krak execution."""

    deck: InputDeck
    partition: Partition
    census: WorkloadCensus
    cluster: ClusterConfig
    result: SimResult
    iterations: int
    #: Final global diagnostics (same values on every rank); empty in census
    #: mode except for timing fields.
    diagnostics: dict
    #: Functional rank states after the run (None in census mode).
    states: list[RankState] | None

    def mean_iteration_time(self, warmup: int = 1) -> float:
        """Steady-state per-iteration time, skipping ``warmup`` iterations."""
        if warmup >= self.iterations:
            raise ValueError("warmup must be smaller than the iteration count")
        return self.result.trace.mean_iteration_time(warmup, self.iterations)


@dataclass(frozen=True)
class MeasuredIteration:
    """One "measured" data point for model validation."""

    deck_name: str
    num_ranks: int
    seconds: float
    compute_by_phase: np.ndarray
    comm_by_phase: np.ndarray


def run_krak(
    deck: InputDeck,
    partition: Partition,
    cluster: ClusterConfig | None = None,
    iterations: int = 3,
    functional: bool = False,
    faces: FaceTable | None = None,
    census: WorkloadCensus | None = None,
) -> KrakRun:
    """Run MiniKrak on the simulated cluster.

    Parameters
    ----------
    deck, partition:
        The input problem and its cell→rank assignment.
    cluster:
        Simulated machine; defaults to the ES-45/QsNet-like validation box.
    iterations:
        Full 15-phase iterations to execute.
    functional:
        Run the real numerics with array payloads (small problems only);
        otherwise charge census-based costs (timing mode, any scale).
    faces, census:
        Optional precomputed structures to avoid rebuilding in sweeps.
    """
    if cluster is None:
        cluster = es45_like_cluster()
    if census is None:
        census = build_workload_census(deck, partition, faces)
    states = build_rank_states(deck, partition) if functional else None

    programs = [
        KrakProgram(
            rank=r,
            census=census,
            node_model=cluster.node,
            state=None if states is None else states[r],
            iterations=iterations,
        )
        for r in range(partition.num_ranks)
    ]
    engine = Engine(cluster, partition.num_ranks, NUM_PHASES)
    result = engine.run(lambda r: programs[r]())

    return KrakRun(
        deck=deck,
        partition=partition,
        census=census,
        cluster=cluster,
        result=result,
        iterations=iterations,
        diagnostics=dict(programs[0].diagnostics),
        states=states,
    )


def measure_iteration_time(
    deck: InputDeck,
    partition: Partition,
    cluster: ClusterConfig | None = None,
    iterations: int = 3,
    warmup: int = 1,
    faces: FaceTable | None = None,
    census: WorkloadCensus | None = None,
) -> MeasuredIteration:
    """Produce a "measured" per-iteration time (census/timing mode)."""
    run = run_krak(
        deck,
        partition,
        cluster=cluster,
        iterations=iterations,
        functional=False,
        faces=faces,
        census=census,
    )
    trace = run.result.trace
    per_iter = run.mean_iteration_time(warmup)
    scale = 1.0 / iterations  # phase sums cover all iterations
    return MeasuredIteration(
        deck_name=deck.name,
        num_ranks=partition.num_ranks,
        seconds=per_iter,
        compute_by_phase=trace.phase_compute_max() * scale,
        comm_by_phase=trace.phase_comm_max() * scale,
    )
