"""Top-level MiniKrak runs: "measure" iteration times on the simulated machine.

``run_krak`` executes the full pipeline (deck → partition → census →
discrete-event run) and returns the trace plus application diagnostics;
``measure_iteration_time`` is the convenience most benchmarks use — it
averages the steady-state iterations, skipping a warm-up, exactly how one
times a production code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydro.dynamic import DynamicConfig, DynamicController, DynamicRunInfo
from repro.hydro.phases import KrakProgram
from repro.hydro.state import RankState, build_rank_states
from repro.hydro.workload import WorkloadCensus, build_workload_census
from repro.machine.cluster import ClusterConfig, es45_like_cluster
from repro.machine.costdb import NUM_PHASES
from repro.mesh.connectivity import FaceTable, build_face_table
from repro.mesh.deck import InputDeck
from repro.partition.base import Partition
from repro.perturb import FAILURE_PHASE, Perturbation, PerturbSpec, degrade_cluster
from repro.simmpi.compile import ProgramWriter, lower_programs
from repro.simmpi.engine import Engine, SimResult


@dataclass(frozen=True)
class KrakRun:
    """Everything produced by one simulated Krak execution."""

    deck: InputDeck
    partition: Partition
    census: WorkloadCensus
    cluster: ClusterConfig
    result: SimResult
    iterations: int
    #: Final global diagnostics (same values on every rank); empty in census
    #: mode except for timing fields.
    diagnostics: dict
    #: Functional rank states after the run (None in census mode).
    states: list[RankState] | None
    #: Imbalance trajectory + repartition tally (None for static runs).
    dynamic: DynamicRunInfo | None = None

    def mean_iteration_time(self, warmup: int = 1) -> float:
        """Steady-state per-iteration time, skipping ``warmup`` iterations."""
        if warmup >= self.iterations:
            raise ValueError("warmup must be smaller than the iteration count")
        return self.result.trace.mean_iteration_time(warmup, self.iterations)


@dataclass(frozen=True)
class MeasuredIteration:
    """One "measured" data point for model validation."""

    deck_name: str
    num_ranks: int
    seconds: float
    compute_by_phase: np.ndarray
    comm_by_phase: np.ndarray


def run_krak(
    deck: InputDeck,
    partition: Partition,
    cluster: ClusterConfig | None = None,
    iterations: int = 3,
    functional: bool = False,
    faces: FaceTable | None = None,
    census: WorkloadCensus | None = None,
    dynamic: DynamicConfig | None = None,
    engine: str = "auto",
    perturb: PerturbSpec | None = None,
) -> KrakRun:
    """Run MiniKrak on the simulated cluster.

    Parameters
    ----------
    deck, partition:
        The input problem and its cell→rank assignment.
    cluster:
        Simulated machine; defaults to the ES-45/QsNet-like validation box.
    iterations:
        Full 15-phase iterations to execute.
    functional:
        Run the real numerics with array payloads (small problems only);
        otherwise charge census-based costs (timing mode, any scale).
    faces, census:
        Optional precomputed structures to avoid rebuilding in sweeps.
    dynamic:
        Optional :class:`~repro.hydro.dynamic.DynamicConfig`.  When given
        (census mode only), iteration ``k`` is charged against
        ``census_at(t_k)`` — the burn front shifts per-cell cost over time —
        and the configured policy may repartition mid-run, paying the
        modelled allgather + cell-migration cost.  ``dynamic=None`` is the
        static path, bit-for-bit identical to previous behaviour.
    engine:
        ``"auto"`` (default) lowers census-mode programs to the batch
        engine and falls back to the scalar event loop otherwise;
        ``"scalar"`` forces the event loop; ``"batch"`` forces the compiled
        path and raises if the program cannot be lowered (functional mode).
        All three produce bitwise-identical clocks and traces (see
        ``docs/engine.md``).
    perturb:
        Optional :class:`~repro.perturb.PerturbSpec` injecting seeded noise
        (OS jitter/stragglers on compute, link degradation on messaging, a
        rank failure with checkpoint/restart cost, churn-forced
        repartitioning).  A ``None`` or null spec is bitwise-identical to
        the clean run, including trace shape.  See ``docs/perturbations.md``.
    """
    if cluster is None:
        cluster = es45_like_cluster()
    if perturb is not None:
        if functional:
            raise ValueError("perturbed runs execute in census (timing) mode only")
        if perturb.has_churn and dynamic is None:
            raise ValueError(
                "churn_prob requires a dynamic workload (the repartition "
                "machinery); pass a DynamicConfig"
            )
        # Link degradation is a machine transform: every consumer prices
        # through the same degraded coefficients on every engine path.
        cluster = degrade_cluster(cluster, perturb)
    if dynamic is not None:
        if functional:
            raise ValueError("dynamic workloads run in census (timing) mode only")
        if faces is None:
            faces = build_face_table(deck.mesh)  # shared with the controller
    if census is None:
        census = build_workload_census(deck, partition, faces)
    states = build_rank_states(deck, partition) if functional else None

    perturbation = None
    if perturb is not None:
        perturbation = Perturbation(perturb, partition.num_ranks)

    controller = None
    num_phases = NUM_PHASES
    fixed_dt = {}
    if dynamic is not None:
        controller = DynamicController(
            deck, partition, dynamic, faces=faces, base_census=census,
            force_repartition=(
                perturbation.churn_at
                if perturbation is not None and perturb.has_churn
                else None
            ),
        )
        # Repartition time gets its own trace phase past the 15 Krak phases.
        num_phases = NUM_PHASES + 1
        fixed_dt = {"fixed_dt": dynamic.dt}
    if perturb is not None and perturb.has_failure:
        # Checkpoint/restart time gets its own phase too; the repartition
        # column exists (possibly unused) whenever the failure column does,
        # so phase indices are stable across configurations.
        num_phases = FAILURE_PHASE + 1

    if engine not in ("auto", "scalar", "batch"):
        raise ValueError(
            f"unknown engine {engine!r}; expected 'auto', 'scalar', or 'batch'"
        )

    # Program construction must be repeatable: batch lowering consumes one
    # set of generators, and a scalar (fallback or forced) run consumes a
    # fresh one.  ``made`` keeps the instances that actually executed so
    # their diagnostics can be reported.
    made: dict[int, KrakProgram] = {}

    def make_program(r: int):
        program = KrakProgram(
            rank=r,
            census=census,
            node_model=cluster.node,
            state=None if states is None else states[r],
            iterations=iterations,
            dynamic=controller,
            perturb=perturbation,
            **fixed_dt,
        )
        made[r] = program
        return program()

    def compile_direct():
        # Census-mode fast path: KrakProgram knows its own op stream is
        # deterministic and emits it column-wise without allocating request
        # objects or running the generator (op-for-op identical to the
        # generator stream — see tests/test_batch_engine.py).
        compiled = []
        for r in range(partition.num_ranks):
            program = KrakProgram(
                rank=r,
                census=census,
                node_model=cluster.node,
                state=None,
                iterations=iterations,
                dynamic=controller,
                perturb=perturbation,
                **fixed_dt,
            )
            writer = ProgramWriter()
            if not program.lower_into(writer):
                return None
            made[r] = program
            compiled.append(writer.finish())
        return compiled

    sim = Engine(cluster, partition.num_ranks, num_phases)
    if engine == "scalar" or (engine == "auto" and functional):
        # Functional payloads never lower; skip the doomed compile attempt.
        result = sim.run(make_program)
    elif engine == "batch":
        compiled = compile_direct() if not functional else None
        if compiled is None:
            compiled = lower_programs(make_program, partition.num_ranks)
        if compiled is None:
            raise ValueError(
                "program cannot be lowered to the batch engine "
                "(functional payloads?); use engine='auto' or 'scalar'"
            )
        result = sim.run_compiled(compiled)
    else:
        compiled = compile_direct()
        if compiled is not None:
            result = sim.run_compiled(compiled)
        else:
            result = sim.run_auto(make_program)

    return KrakRun(
        deck=deck,
        partition=partition,
        census=census,
        cluster=cluster,
        result=result,
        iterations=iterations,
        diagnostics=dict(made[0].diagnostics),
        states=states,
        dynamic=controller.run_info() if controller is not None else None,
    )


def measure_iteration_time(
    deck: InputDeck,
    partition: Partition,
    cluster: ClusterConfig | None = None,
    iterations: int = 3,
    warmup: int = 1,
    faces: FaceTable | None = None,
    census: WorkloadCensus | None = None,
    dynamic: DynamicConfig | None = None,
    perturb: PerturbSpec | None = None,
) -> MeasuredIteration:
    """Produce a "measured" per-iteration time (census/timing mode).

    With ``dynamic``, the phase arrays gain one extra entry — the
    repartition phase — and the steady-state window includes whatever
    repartitions the policy fired there.  With a failure-carrying
    ``perturb``, they gain the checkpoint/restart phase as well.
    """
    run = run_krak(
        deck,
        partition,
        cluster=cluster,
        iterations=iterations,
        functional=False,
        faces=faces,
        census=census,
        dynamic=dynamic,
        perturb=perturb,
    )
    trace = run.result.trace
    per_iter = run.mean_iteration_time(warmup)
    # Phase sums cover the same steady-state window as ``seconds``: warm-up
    # iterations are excluded, not averaged in.
    scale = 1.0 / (iterations - warmup)
    return MeasuredIteration(
        deck_name=deck.name,
        num_ranks=partition.num_ranks,
        seconds=per_iter,
        compute_by_phase=trace.window_compute_max(warmup, iterations) * scale,
        comm_by_phase=trace.window_comm_max(warmup, iterations) * scale,
    )
