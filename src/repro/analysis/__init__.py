"""Analysis utilities: validation sweeps, error metrics, and text reports.

The benchmark harness uses these to regenerate every table and figure of the
paper in plain-text form (the repository has no plotting dependency; figures
are emitted as aligned data series ready for any plotting tool).

Sweep execution is layered: :mod:`repro.analysis.runner` orchestrates grids
of validation points (serial or process-parallel), and
:mod:`repro.analysis.store` persists finished points so sweeps resume
instead of recomputing.
"""

from repro.analysis.errors import signed_relative_error, mean_absolute_percentage_error
from repro.analysis.report import TextTable, format_series
from repro.analysis.runner import (
    ClusterSpec,
    calibrated_table,
    SweepOutcome,
    SweepSpec,
    SweepStatus,
    SweepTask,
    ValidationPoint,
    evaluate_point,
    powers_of_two,
    run_points,
    run_sweep,
    sweep_status,
)
from repro.analysis.store import (
    ResultStore,
    calibration_store,
    prediction_store,
    sweep_store,
)
from repro.analysis.sweep import DynamicSpec, validation_sweep, scaling_sweep

__all__ = [
    "signed_relative_error",
    "mean_absolute_percentage_error",
    "TextTable",
    "format_series",
    "ClusterSpec",
    "calibrated_table",
    "SweepOutcome",
    "SweepSpec",
    "SweepStatus",
    "SweepTask",
    "ValidationPoint",
    "evaluate_point",
    "powers_of_two",
    "run_points",
    "run_sweep",
    "sweep_status",
    "ResultStore",
    "calibration_store",
    "prediction_store",
    "sweep_store",
    "DynamicSpec",
    "validation_sweep",
    "scaling_sweep",
]
