"""Analysis utilities: validation sweeps, error metrics, and text reports.

The benchmark harness uses these to regenerate every table and figure of the
paper in plain-text form (the repository has no plotting dependency; figures
are emitted as aligned data series ready for any plotting tool).
"""

from repro.analysis.errors import signed_relative_error, mean_absolute_percentage_error
from repro.analysis.report import TextTable, format_series
from repro.analysis.sweep import ValidationPoint, validation_sweep, scaling_sweep

__all__ = [
    "signed_relative_error",
    "mean_absolute_percentage_error",
    "TextTable",
    "format_series",
    "ValidationPoint",
    "validation_sweep",
    "scaling_sweep",
]
