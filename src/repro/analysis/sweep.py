"""Validation sweeps: "measure" on the simulated machine, predict with the
models, tabulate errors.

These drive Table 5, Table 6, and Figure 5 of the reproduction, and the
scaling example.  Both sweeps are thin wrappers over the orchestration layer
of :mod:`repro.analysis.runner`: with the defaults (``jobs=1``, no store)
they evaluate serially, exactly as the historical loop did; pass ``jobs``
to fan points out across worker processes and ``store`` (see
:mod:`repro.analysis.store`) to persist and resume finished points.
Partitions are additionally memoised to disk (:mod:`repro.partition.cache`)
because the multilevel partitioner dominates sweep cost at large rank
counts.
"""

from __future__ import annotations

from repro.analysis.runner import (
    SweepTask,
    ValidationPoint,
    evaluate_point,
    powers_of_two,
    run_points,
)
from repro.analysis.store import ResultStore
from repro.core.request import DynamicSpec
from repro.machine.cluster import ClusterConfig
from repro.mesh.deck import InputDeck
from repro.perfmodel.costcurves import CostTable

__all__ = [
    "DynamicSpec",
    "ValidationPoint",
    "evaluate_point",
    "validation_sweep",
    "scaling_sweep",
]


def validation_sweep(
    deck: InputDeck,
    rank_counts,
    cluster: ClusterConfig,
    table: CostTable,
    models=("mesh-specific", "homogeneous", "heterogeneous"),
    seed: int = 1,
    partition_method: str = "multilevel",
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> list:
    """Measure and predict ``deck`` at each rank count.

    Returns a list of :class:`ValidationPoint` in ``rank_counts`` order.
    ``jobs``, ``store``, and ``progress`` are forwarded to
    :func:`repro.analysis.runner.run_points`.
    """
    tasks = [
        SweepTask(
            deck=deck,
            num_ranks=num_ranks,
            cluster=cluster,
            table=table,
            models=tuple(models),
            partition_method=partition_method,
            seed=seed,
        )
        for num_ranks in rank_counts
    ]
    return run_points(tasks, jobs=jobs, store=store, progress=progress)


def scaling_sweep(
    deck: InputDeck,
    cluster: ClusterConfig,
    table: CostTable,
    max_ranks: int = 1024,
    seed: int = 1,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> list:
    """Figure 5's sweep: powers of two from 1 to ``max_ranks``.

    The single-rank point has no communication; the general models handle it
    natively and "measured" comes from the same simulator.
    """
    return validation_sweep(
        deck,
        powers_of_two(max_ranks),
        cluster,
        table,
        models=("homogeneous", "heterogeneous"),
        seed=seed,
        jobs=jobs,
        store=store,
        progress=progress,
    )
