"""Validation sweeps: "measure" on the simulated machine, predict with the
models, tabulate errors.

These drive Table 5, Table 6, and Figure 5 of the reproduction, and the
scaling example.  Partitions are memoised to disk (see
:mod:`repro.partition.cache`) because the multilevel partitioner dominates
sweep cost at large rank counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hydro.driver import measure_iteration_time
from repro.hydro.workload import build_workload_census
from repro.machine.cluster import ClusterConfig
from repro.mesh.connectivity import build_face_table
from repro.mesh.deck import InputDeck
from repro.partition.cache import cached_partition
from repro.perfmodel.costcurves import CostTable
from repro.perfmodel.general import GeneralModel
from repro.perfmodel.mesh_specific import MeshSpecificModel


@dataclass(frozen=True)
class ValidationPoint:
    """One (deck, rank count) validation row."""

    deck_name: str
    num_ranks: int
    measured: float
    #: model label → predicted seconds.
    predicted: dict

    def error(self, model: str) -> float:
        """Signed relative error of ``model`` (paper's convention)."""
        return (self.measured - self.predicted[model]) / self.measured


def validation_sweep(
    deck: InputDeck,
    rank_counts,
    cluster: ClusterConfig,
    table: CostTable,
    models=("mesh-specific", "homogeneous", "heterogeneous"),
    seed: int = 1,
    partition_method: str = "multilevel",
) -> list:
    """Measure and predict ``deck`` at each rank count.

    Returns a list of :class:`ValidationPoint` in ``rank_counts`` order.
    """
    faces = build_face_table(deck.mesh)
    points = []
    for num_ranks in rank_counts:
        partition = cached_partition(
            deck, num_ranks, method=partition_method, seed=seed, faces=faces
        )
        census = build_workload_census(deck, partition, faces)
        measured = measure_iteration_time(
            deck, partition, cluster=cluster, faces=faces, census=census
        ).seconds

        predicted = {}
        for model in models:
            if model == "mesh-specific":
                pred = MeshSpecificModel(table=table, network=cluster.network).predict(
                    census
                )
            elif model in ("homogeneous", "heterogeneous"):
                pred = GeneralModel(
                    table=table, network=cluster.network, mode=model
                ).predict(deck.num_cells, num_ranks)
            else:
                raise ValueError(f"unknown model {model!r}")
            predicted[model] = pred.total
        points.append(
            ValidationPoint(
                deck_name=deck.name,
                num_ranks=num_ranks,
                measured=measured,
                predicted=predicted,
            )
        )
    return points


def scaling_sweep(
    deck: InputDeck,
    cluster: ClusterConfig,
    table: CostTable,
    max_ranks: int = 1024,
    seed: int = 1,
) -> list:
    """Figure 5's sweep: powers of two from 1 to ``max_ranks``.

    The single-rank point has no communication; the general models handle it
    natively and "measured" comes from the same simulator.
    """
    counts = []
    p = 1
    while p <= max_ranks:
        counts.append(p)
        p *= 2
    return validation_sweep(
        deck,
        counts,
        cluster,
        table,
        models=("homogeneous", "heterogeneous"),
        seed=seed,
    )
