"""Error metrics used throughout the validation benches."""

from __future__ import annotations

import numpy as np


def signed_relative_error(measured: float, predicted: float) -> float:
    """The paper's error convention: ``(measured − predicted) / measured``.

    Positive errors mean the model under-predicts; Tables 5 and 6 use this
    sign convention.
    """
    if measured <= 0:
        raise ValueError("measured must be positive")
    return (measured - predicted) / measured


def mean_absolute_percentage_error(measured, predicted) -> float:
    """MAPE over paired measurement/prediction arrays, in percent."""
    measured = np.asarray(measured, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if measured.shape != predicted.shape or measured.size == 0:
        raise ValueError("measured and predicted must be equal-shape, non-empty")
    if np.any(measured <= 0):
        raise ValueError("measured values must be positive")
    return float(np.mean(np.abs((measured - predicted) / measured)) * 100.0)
