"""Parallel, resumable sweep orchestration.

The paper's headline artifacts (Tables 5–6, Figure 5) are *sweeps*: dozens
of (deck, rank count, cluster, partition method) points, each needing a
multilevel partition and one fully simulated iteration.  This module turns
those from a serial for-loop into an orchestrated workload:

* :class:`SweepTask` — one fully specified validation point;
* :func:`evaluate_point` — measure + predict one point (the former body of
  ``validation_sweep``'s loop, bit-for-bit);
* :func:`run_points` — execute tasks serially (``jobs=1``, the default —
  results identical to the historical loop) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, consulting an optional
  :class:`~repro.analysis.store.ResultStore` so finished points are never
  recomputed;
* :class:`SweepSpec` / :func:`run_sweep` — declarative cartesian grids
  (decks × rank counts × clusters × partition methods × seeds) for the CLI
  and scripted studies, plus :func:`sweep_status` for resumability
  reporting.

Every point is deterministic given its parameters (partitioners, the
simulator's jitter, and the models are all seeded), so parallel execution
and cache replay both reproduce the serial results exactly.
"""

from __future__ import annotations

import itertools
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.assemble import calibration_table as _core_calibration_table
from repro.core.assemble import faces_for as _core_faces_for
from repro.core.parsing import as_deck_size
from repro.core.pipeline import run_point
from repro.core.request import ClusterSpec
from repro.machine.cluster import ClusterConfig
from repro.mesh.connectivity import FaceTable
from repro.mesh.deck import InputDeck, build_deck
from repro.perfmodel.calibrate import default_sample_sides
from repro.perfmodel.costcurves import CostTable
from repro.analysis.store import ResultStore

#: Model labels understood by :func:`evaluate_point`.
KNOWN_MODELS = ("mesh-specific", "homogeneous", "heterogeneous")
DEFAULT_MODELS = KNOWN_MODELS


@dataclass(frozen=True)
class ValidationPoint:
    """One (deck, rank count) validation row."""

    deck_name: str
    num_ranks: int
    measured: float
    #: model label → predicted seconds.
    predicted: dict

    def error(self, model: str) -> float:
        """Signed relative error of ``model`` (paper's convention)."""
        return (self.measured - self.predicted[model]) / self.measured

    def to_payload(self) -> dict:
        """JSON-serialisable form for the result store."""
        return {
            "deck_name": self.deck_name,
            "num_ranks": self.num_ranks,
            "measured": self.measured,
            "predicted": dict(self.predicted),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ValidationPoint":
        """Rebuild a point from :meth:`to_payload` output (exact: JSON
        round-trips IEEE doubles via ``repr``)."""
        return cls(
            deck_name=payload["deck_name"],
            num_ranks=int(payload["num_ranks"]),
            measured=payload["measured"],
            predicted=dict(payload["predicted"]),
        )


@dataclass(frozen=True)
class SweepTask:
    """One fully specified sweep point: everything a worker needs.

    Tasks carry the *objects* (deck, cluster, cost table), not references,
    so a worker process computes from inputs identical to the parent's and
    the result cannot drift from the serial path.
    """

    deck: InputDeck
    num_ranks: int
    cluster: ClusterConfig
    #: May be ``None`` when ``models`` is empty (measurement-only points,
    #: e.g. partition studies).
    table: CostTable | None
    models: tuple = DEFAULT_MODELS
    partition_method: str = "multilevel"
    seed: int = 1
    #: Optional :class:`~repro.analysis.sweep.DynamicSpec` — a time-evolving
    #: workload with a repartitioning policy; ``None`` is the static path.
    dynamic: object = None
    #: Optional rank→node placement strategy name (``"block"``,
    #: ``"round-robin"``, ``"random[:seed]"``, ``"comm-aware"``); requires
    #: an SMP cluster.  ``None`` keeps the implicit block map.
    placement: str | None = None
    #: Optional :class:`~repro.perturb.PerturbSpec` — seeded noise injected
    #: into the measurement only; ``None`` is the clean path.
    perturb: object = None

    def store_key(self) -> str:
        """Content hash of every input that determines this point's result."""
        params = {
            "kind": "validation-point",
            "version": 1,
            "deck": self.deck,
            "num_ranks": self.num_ranks,
            "cluster": self.cluster,
            "table": self.table,
            "models": tuple(self.models),
            "partition_method": self.partition_method,
            "seed": self.seed,
        }
        if self.dynamic is not None:
            # Only dynamic points hash the spec, so every static key (and
            # the results already stored under it) is unchanged.
            params["dynamic"] = self.dynamic
        if self.placement is not None:
            # Same contract as the dynamic axis: default-placement keys are
            # byte-identical to what they were before the axis existed.
            params["placement"] = self.placement
        if self.perturb is not None:
            # And again: unperturbed keys (every sweep result stored before
            # the perturbation axis existed) are byte-identical.
            params["perturb"] = self.perturb
        return ResultStore.key_for(params)


def evaluate_point(
    deck: InputDeck,
    num_ranks: int,
    cluster: ClusterConfig,
    table: CostTable,
    models=DEFAULT_MODELS,
    seed: int = 1,
    partition_method: str = "multilevel",
    faces: FaceTable | None = None,
    dynamic=None,
    placement: str | None = None,
    perturb=None,
) -> ValidationPoint:
    """Measure ``deck`` at ``num_ranks`` on the simulated machine and
    predict it with each requested model (``models=()`` measures only).

    ``dynamic`` is an optional :class:`~repro.analysis.sweep.DynamicSpec`:
    the measurement then runs the time-evolving workload (burn-front cost
    shifts plus the spec's repartitioning policy) over the spec's iteration
    window, while model predictions stay static — their error under an
    evolving workload is exactly what such sweeps study.

    ``placement`` is an optional rank→node strategy name (see
    :func:`repro.placement.make_placement`): the measurement then runs
    under that explicit map on the SMP hierarchy — the comm-aware strategy
    optimises against this point's own census — while model predictions
    keep the flat network, quantifying what placement does to their error.

    ``perturb`` is an optional :class:`~repro.perturb.PerturbSpec`: the
    measurement then runs under seeded noise (stragglers, degraded links,
    failures, churn) while model predictions stay clean, quantifying how
    far a perturbed machine drifts from the model.
    """
    measured, predictions = run_point(
        deck,
        num_ranks,
        cluster,
        table,
        models=models,
        seed=seed,
        partition_method=partition_method,
        faces=faces,
        dynamic=dynamic,
        placement=placement,
        perturb=perturb,
    )
    return ValidationPoint(
        deck_name=deck.name,
        num_ranks=num_ranks,
        measured=measured,
        predicted={model: pred.total for model, pred in predictions.items()},
    )


def _faces_for(deck: InputDeck) -> FaceTable:
    """Per-process face-table memo (see :func:`repro.core.assemble.faces_for`)."""
    return _core_faces_for(deck)


def _run_task(task: SweepTask) -> ValidationPoint:
    """Worker entry point: evaluate one task (module-level for pickling)."""
    return evaluate_point(
        task.deck,
        task.num_ranks,
        task.cluster,
        task.table,
        models=task.models,
        seed=task.seed,
        partition_method=task.partition_method,
        faces=_faces_for(task.deck),
        dynamic=task.dynamic,
        placement=task.placement,
        perturb=task.perturb,
    )


def run_points(
    tasks,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> list:
    """Evaluate ``tasks`` and return their :class:`ValidationPoint`\\ s in
    task order.

    Parameters
    ----------
    jobs:
        ``1`` (default) evaluates in-process, in order — the historical
        serial path.  ``> 1`` fans pending tasks out to a process pool;
        results are reassembled in task order and are identical to the
        serial path because every point is deterministic in its inputs.
    store:
        When given, each task's :meth:`SweepTask.store_key` is looked up
        first and finished points are replayed from disk; fresh results are
        persisted as they complete, so an interrupted sweep resumes where
        it stopped.
    progress:
        Optional callback ``progress(done, total, task, point, cached)``
        invoked once per task as it completes (cache hits first).
    """
    tasks = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    results: list = [None] * len(tasks)
    done = 0

    def notify(task, point, cached):
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, len(tasks), task, point, cached)

    pending = []
    keys = {}
    for i, task in enumerate(tasks):
        if store is not None:
            keys[i] = task.store_key()
            payload = store.get(keys[i])
            if payload is not None:
                results[i] = ValidationPoint.from_payload(payload)
                notify(task, results[i], True)
                continue
        pending.append(i)

    def record(i, point):
        results[i] = point
        if store is not None:
            store.put(keys[i], point.to_payload())
        notify(tasks[i], point, False)

    if jobs == 1 or len(pending) <= 1:
        for i in pending:
            record(i, _run_task(tasks[i]))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(_run_task, tasks[i]): i for i in pending}
            remaining = set(futures)
            first_error = None
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    try:
                        point = future.result()
                    except Exception as exc:
                        # Drain the rest of the pool before re-raising so
                        # every finished point is recorded (and stored) —
                        # a failing task must not cost its siblings' work.
                        if first_error is None:
                            first_error = exc
                        continue
                    record(futures[future], point)
            if first_error is not None:
                raise first_error
    return results


def calibrated_table(cluster: ClusterConfig, sides, store: ResultStore | None = None) -> CostTable:
    """Contrived-grid calibration, memoised to disk like partitions are.

    Calibration is a deterministic function of (cluster, sides) and is the
    dominant setup cost of a declarative sweep, so it is content-addressed
    in its own ``calibrations`` store namespace.  This is what lets
    ``repro sweep status`` compute exact point keys (which hash the table's
    content) without re-running the calibration every time.
    """
    if store is None:
        store = ResultStore(namespace="calibrations")
    return _core_calibration_table(cluster, sides, store=store)


def _as_deck_size(deck) -> str | tuple:
    """Normalise a deck axis entry to ``build_deck``'s size argument."""
    return as_deck_size(deck)


def powers_of_two(max_ranks: int) -> tuple:
    """``(1, 2, 4, …, max_ranks)`` — Figure 5's processor-count axis."""
    counts = []
    p = 1
    while p <= max_ranks:
        counts.append(p)
        p *= 2
    return tuple(counts)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid: the cartesian product of its axes.

    Points are enumerated deck-major (deck → cluster → partition method →
    seed → workload → placement → perturbation → rank count), matching the
    paper's table layout.
    """

    decks: tuple = ("small",)
    rank_counts: tuple = (1, 2, 4, 8, 16, 32, 64)
    clusters: tuple = (ClusterSpec(),)
    partition_methods: tuple = ("multilevel",)
    models: tuple = DEFAULT_MODELS
    seeds: tuple = (1,)
    #: Workload axis: ``None`` is the static run; a
    #: :class:`~repro.analysis.sweep.DynamicSpec` runs the time-evolving
    #: workload under its repartitioning policy.
    dynamics: tuple = (None,)
    #: Placement axis: ``None`` is the implicit block map; strategy names
    #: (``"block"``, ``"round-robin"``, ``"random[:seed]"``,
    #: ``"comm-aware"``) run under that explicit rank→node map and require
    #: an SMP cluster spec.
    placements: tuple = (None,)
    #: Perturbation axis: ``None`` is the clean machine; a
    #: :class:`~repro.perturb.PerturbSpec` injects seeded stragglers /
    #: degraded links / failures / churn into the measurement only.
    perturbs: tuple = (None,)
    #: Calibration range for the contrived-grid cost table.
    max_side: int = 256

    def __post_init__(self) -> None:
        for name in (
            "decks",
            "rank_counts",
            "clusters",
            "partition_methods",
            "models",
            "seeds",
            "dynamics",
            "placements",
            "perturbs",
        ):
            value = getattr(self, name)
            if isinstance(value, (str, int)) or value is None:
                value = (value,)
            object.__setattr__(self, name, tuple(value))
            # An empty ``models`` axis is a measurement-only sweep; every
            # other axis must contribute at least one grid value.
            if name != "models" and not getattr(self, name):
                raise ValueError(f"sweep axis {name!r} must be non-empty")

    @classmethod
    def figure5(
        cls, decks=("medium",), max_ranks: int = 1024, max_side: int = 512
    ) -> "SweepSpec":
        """The Figure-5 strong-scaling grid (general models only)."""
        return cls(
            decks=tuple(decks),
            rank_counts=powers_of_two(max_ranks),
            models=("homogeneous", "heterogeneous"),
            max_side=max_side,
        )

    @property
    def num_points(self) -> int:
        """Grid cardinality."""
        return (
            len(self.decks)
            * len(self.rank_counts)
            * len(self.clusters)
            * len(self.partition_methods)
            * len(self.seeds)
            * len(self.dynamics)
            * len(self.placements)
            * len(self.perturbs)
        )

    def tasks(self) -> list:
        """Materialise the grid into :class:`SweepTask`\\ s.

        Heavy shared inputs (decks, clusters, calibrated cost tables) are
        built once per distinct axis value, in the parent process, so every
        task of a group shares identical objects.
        """
        decks = [build_deck(_as_deck_size(d)) for d in self.decks]
        built = []
        for cluster_spec in self.clusters:
            cluster = cluster_spec.build()
            table = (
                calibrated_table(cluster, default_sample_sides(self.max_side))
                if self.models
                else None
            )
            built.append((cluster, table))
        out = []
        for deck, (cluster, table), method, seed, dynamic, placement, perturb, ranks in (
            itertools.product(
                decks,
                built,
                self.partition_methods,
                self.seeds,
                self.dynamics,
                self.placements,
                self.perturbs,
                self.rank_counts,
            )
        ):
            out.append(
                SweepTask(
                    deck=deck,
                    num_ranks=ranks,
                    cluster=cluster,
                    table=table,
                    models=self.models,
                    partition_method=method,
                    seed=seed,
                    dynamic=dynamic,
                    placement=placement,
                    perturb=perturb,
                )
            )
        return out


@dataclass(frozen=True)
class SweepOutcome:
    """One executed grid point: its task, result, and provenance."""

    task: SweepTask
    point: ValidationPoint
    cached: bool


@dataclass(frozen=True)
class SweepStatus:
    """Resumability report for a grid against a store."""

    total: int
    completed: int
    #: Store keys of the still-missing points, in grid order.
    pending_keys: tuple = field(default_factory=tuple)

    @property
    def pending(self) -> int:
        """Number of points that still need simulation."""
        return self.total - self.completed


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> list:
    """Execute a declarative grid; returns :class:`SweepOutcome`\\ s in grid
    order."""
    tasks = spec.tasks()
    cached_flags = {}

    def wrapped(done, total, task, point, cached):
        cached_flags[id(task)] = cached
        if progress is not None:
            progress(done, total, task, point, cached)

    points = run_points(tasks, jobs=jobs, store=store, progress=wrapped)
    return [
        SweepOutcome(task=t, point=p, cached=cached_flags.get(id(t), False))
        for t, p in zip(tasks, points)
    ]


def sweep_status(spec: SweepSpec, store: ResultStore) -> SweepStatus:
    """How much of ``spec`` is already in ``store``."""
    tasks = spec.tasks()
    pending = tuple(k for k in (t.store_key() for t in tasks) if k not in store)
    return SweepStatus(
        total=len(tasks), completed=len(tasks) - len(pending), pending_keys=pending
    )
