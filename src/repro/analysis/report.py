"""Fixed-width text tables and series for the benchmark reports.

Every bench prints its table/figure in the same aligned plain-text format,
so EXPERIMENTS.md can embed the output verbatim.
"""

from __future__ import annotations

from typing import Sequence


class TextTable:
    """An aligned plain-text table with a title and column headers."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        """Append a row; cells are stringified (floats get 3 significant-ish digits)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        rendered = []
        for c in cells:
            if isinstance(c, float):
                rendered.append(f"{c:.4g}")
            else:
                rendered.append(str(c))
        self.rows.append(rendered)

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(h) for h in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        header = sep.join(h.rjust(w) for h, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(name: str, xs, ys, x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as aligned ``x y`` pairs."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal lengths")
    lines = [f"# series: {name} ({x_label} vs {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>12g} {y:>14.6g}")
    return "\n".join(lines)
