"""Content-addressed on-disk store for sweep artifacts.

Generalises the memoisation pattern of :mod:`repro.partition.cache` from
partitions to arbitrary JSON-serialisable sweep results: every artifact is
keyed by a :func:`repro.util.stable_hash` of the *full* parameter set that
produced it (deck content, cluster model, cost table, partition method,
seed, …), so a key hit guarantees the cached value is the one the
computation would reproduce.  Stores from concurrent worker processes are
safe — writes go through a temporary file and an atomic ``os.replace``.

The store is what makes sweeps resumable: re-running a partially completed
sweep looks every point up here first and only simulates the misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.util.artifacts import cache_root, stable_hash

__all__ = [
    "ResultStore",
    "calibration_store",
    "prediction_store",
    "sweep_store",
    "stable_hash",
]


class ResultStore:
    """A directory of ``<key>.json`` files keyed by content hash.

    Parameters
    ----------
    namespace:
        Subdirectory under the cache root; different artifact kinds
        (validation points, calibration tables, …) use different namespaces
        so ``clear`` has a bounded blast radius.
    root:
        Override the cache root (defaults to ``.cache/`` at the repository
        root or ``$REPRO_CACHE_DIR``).
    """

    def __init__(self, namespace: str = "sweeps", root: Path | None = None) -> None:
        if not namespace or "/" in namespace or namespace in (".", ".."):
            raise ValueError(f"invalid store namespace {namespace!r}")
        self.namespace = namespace
        self.directory = (Path(root) if root is not None else cache_root()) / namespace

    @staticmethod
    def key_for(params) -> str:
        """The store key of a parameter set (see :func:`stable_hash`)."""
        return stable_hash(params)

    def path_for(self, key: str) -> Path:
        """Path of the artifact file for ``key``."""
        return self.directory / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> list:
        """All stored keys (unordered artifacts, sorted for determinism)."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def get(self, key: str, default=None):
        """The stored value for ``key``, or ``default`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return default

    def put(self, key: str, value) -> Path:
        """Store ``value`` (JSON-serialisable) under ``key`` atomically.

        Atomic replacement means concurrent writers of the same key leave
        one complete artifact, never a torn file; last writer wins, and all
        writers of one key hold the same content by construction.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(value, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return self.path_for(key)

    def clear(self) -> int:
        """Delete every artifact in this namespace; returns the count."""
        removed = 0
        for key in self.keys():
            try:
                self.path_for(key).unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed


def sweep_store(root: Path | None = None) -> ResultStore:
    """The default store for validation-sweep points."""
    return ResultStore(namespace="sweeps", root=root)


def calibration_store(root: Path | None = None) -> ResultStore:
    """The default store for calibrated cost tables."""
    return ResultStore(namespace="calibrations", root=root)


def prediction_store(root: Path | None = None) -> ResultStore:
    """The default store for core prediction/measurement results.

    Keys come from :func:`repro.core.pipeline.request_key`; values are
    :meth:`repro.core.request.PredictionResult.to_payload` dicts.  The
    prediction service fronts this namespace with an in-process
    :class:`repro.core.cache.LRUResultCache`.
    """
    return ResultStore(namespace="predictions", root=root)
