"""SMP-aware (hierarchical) interconnect extension.

The validation machine was a cluster of 4-way AlphaServer ES-45 SMP nodes:
ranks on the same node communicate through shared memory at a fraction of
the QsNet latency.  The paper's flat ``Tmsg`` folds this into one average;
this extension models it explicitly and provides the *flat-equivalent*
network (latency blended by the fraction of on-node neighbour pairs) that
an analytic model can use without pairwise placement information.

Which ranks share a node is itself a modelling axis: by default consecutive
ranks are packed onto nodes (*block* placement, the launcher default), and
an explicit :class:`~repro.placement.base.Placement` overrides that map —
round-robin, random, or communication-aware (see :mod:`repro.placement`).
All rank→node lookups funnel through :meth:`HierarchicalNetwork.node_of`,
which validates its argument once for every caller.

>>> from repro.machine.network import QSNET_LIKE
>>> h = es45_hierarchical_network(QSNET_LIKE)
>>> h.node_of(3), h.node_of(4)
(0, 1)
>>> h.same_node(0, 3), h.same_node(3, 4)
(True, False)
>>> h.tmsg_pair(0, 1, 64) < h.tmsg_pair(0, 4, 64)
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.machine.network import NetworkModel


@dataclass(frozen=True)
class HierarchicalNetwork:
    """Two-level network: shared-memory within a node, NIC between nodes.

    Attributes
    ----------
    intra:
        Message-cost model for ranks on the same node.
    inter:
        Message-cost model for ranks on different nodes.
    ranks_per_node:
        Node capacity.  Without an explicit placement, consecutive ranks
        are packed onto nodes in blocks of this size (the usual block
        placement of an MPI launcher).
    placement:
        Optional explicit rank→node map
        (:class:`~repro.placement.base.Placement`).  ``None`` keeps the
        implicit block map; a placement additionally bounds the valid rank
        range, so out-of-range lookups fail loudly instead of silently
        pricing a message for a rank that does not exist.
    intra_send_overhead, intra_recv_overhead:
        Optional host overheads for *on-node* messages.  A shared-memory
        transport bypasses the NIC's DMA setup, so its per-message CPU cost
        is genuinely lower than the fabric's; ``None`` (the default)
        charges the cluster's flat overheads on every message, keeping
        results identical to the placement-unaware model.
    """

    intra: NetworkModel
    inter: NetworkModel
    ranks_per_node: int
    name: str = "hierarchical"
    placement: object | None = None
    intra_send_overhead: float | None = None
    intra_recv_overhead: float | None = None

    def __post_init__(self) -> None:
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.placement is not None and (
            self.placement.ranks_per_node != self.ranks_per_node
        ):
            raise ValueError(
                "placement capacity does not match the network's ranks_per_node"
            )
        for value in (self.intra_send_overhead, self.intra_recv_overhead):
            if value is not None and value < 0:
                raise ValueError("intra-node host overheads must be non-negative")

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank``.

        The single validated rank→node lookup every pairwise query funnels
        through: negative ranks always raise, and when an explicit
        placement is present so do ranks beyond its range (block placement
        is unbounded — the launcher packs as many nodes as needed).
        """
        if rank < 0:
            raise ValueError("rank must be non-negative")
        if self.placement is None:
            return rank // self.ranks_per_node
        if rank >= self.placement.num_ranks:
            raise ValueError(
                f"rank {rank} out of range for a "
                f"{self.placement.num_ranks}-rank placement"
            )
        return int(self.placement.node_of_rank[rank])

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node (validated like :meth:`node_of`)."""
        return self.node_of(a) == self.node_of(b)

    def node_of_many(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of` — validated once for the whole batch.

        The sparse extreme-scale paths map millions of endpoints per
        call; this keeps the loud out-of-range behaviour of the scalar
        lookup at O(1) validation cost instead of per element.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and int(ranks.min()) < 0:
            raise ValueError("ranks must be non-negative")
        if self.placement is None:
            return ranks // self.ranks_per_node
        if ranks.size and int(ranks.max()) >= self.placement.num_ranks:
            raise ValueError(
                f"rank {int(ranks.max())} out of range for a "
                f"{self.placement.num_ranks}-rank placement"
            )
        return self.placement.node_of_rank[ranks]

    def same_node_mask(self, a_ranks: np.ndarray, b_ranks: np.ndarray) -> np.ndarray:
        """Batched :meth:`same_node` over aligned endpoint arrays.

        The vectorized hot path behind pairwise-aware model pricing.
        Contract (as for ``tmsg_many``): inputs must be integer arrays of
        valid ranks — no per-element validation happens here.
        """
        if self.placement is None:
            return (a_ranks // self.ranks_per_node) == (
                b_ranks // self.ranks_per_node
            )
        nodes = self.placement.node_of_rank
        return nodes[a_ranks] == nodes[b_ranks]

    def network_for(self, a: int, b: int) -> NetworkModel:
        """The applicable flat network for a rank pair."""
        return self.intra if self.same_node(a, b) else self.inter

    def tmsg_pair(self, a: int, b: int, size) -> float:
        """Equation (4) for a specific rank pair."""
        return self.network_for(a, b).tmsg(size)

    def tmsg_pairs(
        self, a_ranks: np.ndarray, b_ranks: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Batched Equation (4) priced by actual endpoint nodes.

        One piecewise-linear evaluation per network level: the same-node
        mask splits ``sizes`` between ``intra.tmsg_many`` and
        ``inter.tmsg_many``, so each element is bitwise identical to the
        scalar :meth:`tmsg_pair` of the same endpoints and size.  Same
        no-validation contract as :meth:`same_node_mask` /
        ``NetworkModel.tmsg_many``.
        """
        mask = self.same_node_mask(a_ranks, b_ranks)
        out = self.inter.tmsg_many(sizes)
        if mask.any():
            out[mask] = self.intra.tmsg_many(sizes[mask])
        return out

    def with_placement(self, placement) -> "HierarchicalNetwork":
        """Copy of this network under an explicit rank→node map."""
        return replace(
            self, placement=placement, name=f"{self.name}+{placement.name}"
        )

    def host_overheads_for(
        self, a: int, b: int, send_overhead: float, recv_overhead: float
    ) -> tuple[float, float]:
        """``(send, recv)`` host overheads for a rank pair.

        The flat cluster overheads apply across nodes and — when no
        intra-node overheads are configured — on-node too, so the default
        machine charges exactly what the placement-unaware model did.
        """
        if (
            self.intra_send_overhead is None
            and self.intra_recv_overhead is None
        ) or not self.same_node(a, b):
            return send_overhead, recv_overhead
        send = (
            send_overhead
            if self.intra_send_overhead is None
            else self.intra_send_overhead
        )
        recv = (
            recv_overhead
            if self.intra_recv_overhead is None
            else self.intra_recv_overhead
        )
        return send, recv

    def tree_extents(self, num_ranks: int) -> tuple[int, int]:
        """``(num_nodes, max_ranks_on_one_node)`` for ``num_ranks`` ranks.

        The two extents the SMP collective trees span: an inter-node tree
        over the occupied nodes and an intra-node tree over the fullest
        node.  Block placement packs ``ceil(P / ranks_per_node)`` nodes;
        an explicit placement reports its own occupancy (and must cover
        exactly ``num_ranks`` ranks).
        """
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        if self.placement is None:
            num_nodes = (num_ranks + self.ranks_per_node - 1) // self.ranks_per_node
            return num_nodes, min(num_ranks, self.ranks_per_node)
        if self.placement.num_ranks != num_ranks:
            raise ValueError(
                f"placement maps {self.placement.num_ranks} ranks, "
                f"but the job has {num_ranks}"
            )
        return self.placement.num_nodes, self.placement.max_ranks_on_node

    # ------------------------------------------------------------- blending

    def local_pair_fraction(self, labels: np.ndarray, pairs) -> float:
        """Fraction of communicating rank pairs that are on-node.

        ``pairs`` is an iterable of ``(rank_a, rank_b)`` tuples (e.g. the
        keys of a :class:`~repro.mesh.ghost.BoundaryCensus`).
        """
        pairs = list(pairs)
        if not pairs:
            return 0.0
        local = sum(1 for a, b in pairs if self.same_node(a, b))
        return local / len(pairs)

    def flat_equivalent(self, local_fraction: float) -> NetworkModel:
        """A flat network whose costs are the pair-weighted blend.

        Blends latency and per-byte cost segment-by-segment; requires the
        two levels to share breakpoint structure (true for the default
        two-segment models).
        """
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError("local_fraction must lie in [0, 1]")
        if not np.array_equal(self.intra.breakpoints, self.inter.breakpoints):
            raise ValueError("intra/inter breakpoints must match for blending")
        w = local_fraction
        return NetworkModel(
            breakpoints=self.inter.breakpoints.copy(),
            latency=w * self.intra.latency + (1 - w) * self.inter.latency,
            per_byte=w * self.intra.per_byte + (1 - w) * self.inter.per_byte,
            name=f"blend({self.name},{local_fraction:.2f})",
        )


def es45_hierarchical_network(
    inter: NetworkModel,
    intra_latency: float = 3e-6,
    intra_bandwidth: float = 1.2e9,
    ranks_per_node: int = 4,
    intra_send_overhead: float | None = None,
    intra_recv_overhead: float | None = None,
) -> HierarchicalNetwork:
    """The ES-45-like two-level network: 4-way SMP over the given fabric."""
    from repro.machine.network import make_network

    eager = float(inter.breakpoints[0]) if inter.breakpoints.size else 4096.0
    intra = make_network(
        small_latency=intra_latency,
        large_latency=2 * intra_latency,
        eager_threshold=eager,
        bandwidth_bytes_per_s=intra_bandwidth,
        name="shared-memory",
    )
    return HierarchicalNetwork(
        intra=intra,
        inter=inter,
        ranks_per_node=ranks_per_node,
        name="es45-smp",
        intra_send_overhead=intra_send_overhead,
        intra_recv_overhead=intra_recv_overhead,
    )


# ---------------------------------------------------------------- collectives

def hier_bcast_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware fan-out: inter-node tree plus an intra-node tree."""
    from repro.simmpi.collectives import tree_depth

    num_nodes, local = h.tree_extents(num_ranks)
    return tree_depth(num_nodes) * h.inter.tmsg_cached(nbytes) + tree_depth(
        local
    ) * h.intra.tmsg_cached(nbytes)


def hier_gather_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware fan-in (same step structure as the fan-out)."""
    return hier_bcast_time(h, num_ranks, nbytes)


def hier_allreduce_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware reduce + broadcast: twice the fan-out time."""
    return 2.0 * hier_bcast_time(h, num_ranks, nbytes)
