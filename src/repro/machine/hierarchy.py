"""SMP-aware (hierarchical) interconnect extension.

The validation machine was a cluster of 4-way AlphaServer ES-45 SMP nodes:
ranks on the same node communicate through shared memory at a fraction of
the QsNet latency.  The paper's flat ``Tmsg`` folds this into one average;
this extension models it explicitly and provides the *flat-equivalent*
network (latency blended by the fraction of on-node neighbour pairs) that
an analytic model can use without pairwise placement information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.network import NetworkModel


@dataclass(frozen=True)
class HierarchicalNetwork:
    """Two-level network: shared-memory within a node, NIC between nodes.

    Attributes
    ----------
    intra:
        Message-cost model for ranks on the same node.
    inter:
        Message-cost model for ranks on different nodes.
    ranks_per_node:
        Consecutive ranks are packed onto nodes in blocks of this size
        (the usual block placement of an MPI launcher).
    """

    intra: NetworkModel
    inter: NetworkModel
    ranks_per_node: int
    name: str = "hierarchical"

    def __post_init__(self) -> None:
        if self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank`` under block placement."""
        if rank < 0:
            raise ValueError("rank must be non-negative")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node."""
        return self.node_of(a) == self.node_of(b)

    def network_for(self, a: int, b: int) -> NetworkModel:
        """The applicable flat network for a rank pair."""
        return self.intra if self.same_node(a, b) else self.inter

    def tmsg_pair(self, a: int, b: int, size) -> float:
        """Equation (4) for a specific rank pair."""
        return self.network_for(a, b).tmsg(size)

    # ------------------------------------------------------------- blending

    def local_pair_fraction(self, labels: np.ndarray, pairs) -> float:
        """Fraction of communicating rank pairs that are on-node.

        ``pairs`` is an iterable of ``(rank_a, rank_b)`` tuples (e.g. the
        keys of a :class:`~repro.mesh.ghost.BoundaryCensus`).
        """
        pairs = list(pairs)
        if not pairs:
            return 0.0
        local = sum(1 for a, b in pairs if self.same_node(a, b))
        return local / len(pairs)

    def flat_equivalent(self, local_fraction: float) -> NetworkModel:
        """A flat network whose costs are the pair-weighted blend.

        Blends latency and per-byte cost segment-by-segment; requires the
        two levels to share breakpoint structure (true for the default
        two-segment models).
        """
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError("local_fraction must lie in [0, 1]")
        if not np.array_equal(self.intra.breakpoints, self.inter.breakpoints):
            raise ValueError("intra/inter breakpoints must match for blending")
        w = local_fraction
        return NetworkModel(
            breakpoints=self.inter.breakpoints.copy(),
            latency=w * self.intra.latency + (1 - w) * self.inter.latency,
            per_byte=w * self.intra.per_byte + (1 - w) * self.inter.per_byte,
            name=f"blend({self.name},{local_fraction:.2f})",
        )


def es45_hierarchical_network(
    inter: NetworkModel,
    intra_latency: float = 3e-6,
    intra_bandwidth: float = 1.2e9,
    ranks_per_node: int = 4,
) -> HierarchicalNetwork:
    """The ES-45-like two-level network: 4-way SMP over the given fabric."""
    from repro.machine.network import make_network

    eager = float(inter.breakpoints[0]) if inter.breakpoints.size else 4096.0
    intra = make_network(
        small_latency=intra_latency,
        large_latency=2 * intra_latency,
        eager_threshold=eager,
        bandwidth_bytes_per_s=intra_bandwidth,
        name="shared-memory",
    )
    return HierarchicalNetwork(
        intra=intra, inter=inter, ranks_per_node=ranks_per_node, name="es45-smp"
    )


# ---------------------------------------------------------------- collectives

def hier_bcast_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware fan-out: inter-node tree plus an intra-node tree."""
    from repro.simmpi.collectives import tree_depth

    num_nodes = (num_ranks + h.ranks_per_node - 1) // h.ranks_per_node
    local = min(num_ranks, h.ranks_per_node)
    return tree_depth(num_nodes) * h.inter.tmsg_cached(nbytes) + tree_depth(
        local
    ) * h.intra.tmsg_cached(nbytes)


def hier_gather_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware fan-in (same step structure as the fan-out)."""
    return hier_bcast_time(h, num_ranks, nbytes)


def hier_allreduce_time(h: HierarchicalNetwork, num_ranks: int, nbytes: float) -> float:
    """SMP-aware reduce + broadcast: twice the fan-out time."""
    return 2.0 * hier_bcast_time(h, num_ranks, nbytes)
