"""Simulated-hardware substrate: node compute-cost model and network model.

The paper validated on a 256-node HP/Compaq AlphaServer ES-45 cluster
(4 × 1.25 GHz EV-68 per node) with a Quadrics QsNet-I fat tree.  We have no
such machine, so this package defines a *parameterised* cluster whose
behaviour contains the phenomena the paper's model has to contend with:

* per-cell compute cost that depends on phase and material;
* a fixed per-phase overhead that produces the "knee" in the per-cell cost
  curves of Figure 3 (cost per cell rises as subgrids shrink, approaching a
  constant per-phase floor);
* a mild cache penalty for subgrids that fall out of cache;
* deterministic per-rank compute jitter (max-over-ranks ≠ mean);
* a piecewise-linear message cost with an eager→rendezvous protocol switch.

The discrete-event simulator in :mod:`repro.simmpi` charges these costs to
produce the reproduction's "measured" times.
"""

from repro.machine.network import NetworkModel, QSNET_LIKE
from repro.machine.node import NodeModel
from repro.machine.costdb import (
    NUM_PHASES,
    krak_node_model,
    PHASE_COMM_KIND,
    COMM_NONE,
    COMM_BOUNDARY_EXCHANGE,
    COMM_GHOST_8,
    COMM_GHOST_16,
    PHASE_SYNC_POINTS,
    PHASE_BCASTS,
    PHASE_GATHERS,
)
from repro.machine.cluster import ClusterConfig, es45_like_cluster
from repro.machine.hierarchy import HierarchicalNetwork, es45_hierarchical_network

__all__ = [
    "NetworkModel",
    "QSNET_LIKE",
    "NodeModel",
    "NUM_PHASES",
    "krak_node_model",
    "PHASE_COMM_KIND",
    "COMM_NONE",
    "COMM_BOUNDARY_EXCHANGE",
    "COMM_GHOST_8",
    "COMM_GHOST_16",
    "PHASE_SYNC_POINTS",
    "PHASE_BCASTS",
    "PHASE_GATHERS",
    "ClusterConfig",
    "es45_like_cluster",
    "HierarchicalNetwork",
    "es45_hierarchical_network",
]
