"""Krak iteration structure and default cost constants.

This module is the single source of truth for the paper's Table 1 (phase
actions and synchronisation points), Table 4 (collective sizes/counts), and
the default per-phase/per-material compute costs of the simulated machine.

Phase numbering is 0-based internally (phase index 0 = the paper's
"Phase 1").  The per-cell costs are chosen so that iteration times land in
the paper's range (hundreds of ms at 16 PEs down to tens of ms at 512 PEs on
the medium deck) with the cost-curve knee near ~10² cells per processor, the
regime where the paper's small-deck validation breaks down.
"""

from __future__ import annotations

import numpy as np

from repro.machine.node import NodeModel
from repro.mesh.deck import NUM_MATERIALS

#: Krak iterations comprise 15 phases (paper Table 1).
NUM_PHASES = 15

# --- Communication kind per phase (Table 1, "Action" column) ---------------
COMM_NONE = "none"
COMM_BOUNDARY_EXCHANGE = "boundary_exchange"
COMM_GHOST_8 = "ghost_update_8"
COMM_GHOST_16 = "ghost_update_16"

#: Point-to-point activity per phase: phase 2 does the per-material boundary
#: exchange; phases 4, 5, 7 do ghost-node updates of 8/16/16 bytes per node.
PHASE_COMM_KIND = (
    COMM_NONE,  # 1: broadcast only
    COMM_BOUNDARY_EXCHANGE,  # 2: boundary exchange + gather
    COMM_NONE,  # 3: computation only
    COMM_GHOST_8,  # 4: ghost node updates (8 bytes)
    COMM_GHOST_16,  # 5: ghost node updates (16 bytes)
    COMM_NONE,  # 6
    COMM_GHOST_16,  # 7: ghost node updates (16 bytes)
    COMM_NONE,  # 8
    COMM_NONE,  # 9
    COMM_NONE,  # 10
    COMM_NONE,  # 11
    COMM_NONE,  # 12
    COMM_NONE,  # 13
    COMM_NONE,  # 14
    COMM_NONE,  # 15: broadcast only
)

#: Bytes per ghost node moved by each ghost-update phase.
GHOST_BYTES_PER_NODE = {3: 8, 4: 16, 6: 16}

#: Global synchronisation points (allreduces) per phase; sums to 22,
#: matching Table 4's 9 four-byte + 13 eight-byte MPI_Allreduce calls.
PHASE_SYNC_POINTS = (2, 1, 3, 1, 1, 3, 1, 1, 1, 1, 2, 1, 1, 1, 2)

#: Allreduce payload sizes (bytes) per phase; flattening must yield the
#: Table 4 census: nine 4-byte and thirteen 8-byte operations.
PHASE_ALLREDUCE_SIZES = (
    (4, 8),
    (8,),
    (4, 4, 8),
    (8,),
    (4,),
    (4, 8, 8),
    (8,),
    (4,),
    (8,),
    (8,),
    (4, 8),
    (8,),
    (4,),
    (8,),
    (4, 8),
)

#: Broadcast payload sizes per phase (Table 1: phases 1, 2, 15 each
#: broadcast a 4-byte and an 8-byte value; Table 4 totals 3 + 3).
PHASE_BCASTS = {0: (4, 8), 1: (4, 8), 14: (4, 8)}

#: Gather payloads per phase (Table 1/4: one 32-byte gather in phase 2).
PHASE_GATHERS = {1: (32,)}

#: Bytes transferred per boundary face in a boundary-exchange message
#: (Section 4.1: "12 bytes times the number of faces").
BOUNDARY_BYTES_PER_FACE = 12
#: Extra bytes per ghost node touching more than one material (first two
#: messages of each per-material sextet).
BOUNDARY_BYTES_PER_MULTI_NODE = 12
#: Messages per material per neighbour, and in the final all-materials step.
BOUNDARY_MSGS_PER_STEP = 6

# --- Default compute costs --------------------------------------------------
# Per-cell cost in seconds per (phase, material); material order is
# HE gas, aluminum (inner), foam, aluminum (outer).  Phases 3, 11, 12 and 14
# are strongly material-dependent (EOS, energy, burn, strength), mirroring
# Figure 2's observation that e.g. phase 14 varies with material.
_US = 1e-6
DEFAULT_CELL_COST = np.array(
    [
        [0.20, 0.20, 0.20, 0.20],  # 1  timestep control
        [2.00, 1.90, 2.10, 1.90],  # 2  slip-line / contact search
        [3.20, 2.50, 3.00, 2.50],  # 3  EOS evaluation
        [1.00, 1.00, 1.00, 1.00],  # 4  nodal mass accumulation
        [3.00, 2.90, 3.10, 2.90],  # 5  corner forces + viscosity scatter
        [1.50, 1.50, 1.50, 1.50],  # 6  velocity / position update
        [0.80, 0.80, 0.80, 0.80],  # 7  velocity ghost preparation
        [1.80, 1.80, 1.80, 1.80],  # 8  volume / strain rate
        [0.60, 0.60, 0.60, 0.60],  # 9  density update
        [1.20, 1.20, 1.50, 1.20],  # 10 artificial-viscosity coefficients
        [2.00, 1.40, 1.60, 1.40],  # 11 energy update
        [1.50, 0.80, 0.80, 0.80],  # 12 burn-fraction update (HE-heavy)
        [1.40, 1.40, 1.40, 1.40],  # 13 hourglass filtering
        [0.80, 2.20, 2.60, 2.20],  # 14 material strength models
        [0.40, 0.40, 0.40, 0.40],  # 15 diagnostics
    ]
) * _US

#: Fixed per-phase overhead in seconds: places the per-cell cost-curve knee
#: near overhead / cell_cost ≈ 10³ cells per processor (Figure 3), which is
#: also what keeps the medium deck's strong scaling from being ideal at
#: 256–512 PEs (Tables 5–6: 61 → 49 → 44 ms instead of halving).
DEFAULT_PHASE_OVERHEAD = np.array(
    [
        520.0,  # 1
        2780.0,  # 2   (the paper singles out phase 2's knee, Figure 3 centre)
        2260.0,  # 3
        780.0,  # 4
        1820.0,  # 5
        1040.0,  # 6
        610.0,  # 7
        1130.0,  # 8
        430.0,  # 9
        870.0,  # 10
        1300.0,  # 11
        960.0,  # 12
        1040.0,  # 13
        2080.0,  # 14
        390.0,  # 15
    ]
) * _US


def krak_node_model(
    speed: float = 1.0,
    cache_cells: float = 40000.0,
    cache_penalty: float = 0.20,
    jitter_frac: float = 0.015,
    seed: int = 0,
) -> NodeModel:
    """Build the default Krak :class:`~repro.machine.node.NodeModel`.

    Parameters
    ----------
    speed:
        Relative processor speed; costs scale as ``1 / speed`` (used by the
        what-if example to model faster procurement candidates).
    """
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    assert DEFAULT_CELL_COST.shape == (NUM_PHASES, NUM_MATERIALS)
    return NodeModel(
        phase_overhead=DEFAULT_PHASE_OVERHEAD / speed,
        cell_cost=DEFAULT_CELL_COST / speed,
        cache_cells=cache_cells,
        cache_penalty=cache_penalty,
        jitter_frac=jitter_frac,
        seed=seed,
    )


def table4_census() -> dict:
    """Derive the Table 4 collective census from the phase structure."""
    bcast4 = sum(1 for sizes in PHASE_BCASTS.values() for s in sizes if s == 4)
    bcast8 = sum(1 for sizes in PHASE_BCASTS.values() for s in sizes if s == 8)
    all4 = sum(1 for sizes in PHASE_ALLREDUCE_SIZES for s in sizes if s == 4)
    all8 = sum(1 for sizes in PHASE_ALLREDUCE_SIZES for s in sizes if s == 8)
    gathers = [(s, 1) for sizes in PHASE_GATHERS.values() for s in sizes]
    return {
        "MPI_Bcast": {4: bcast4, 8: bcast8},
        "MPI_Allreduce": {4: all4, 8: all8},
        "MPI_Gather": dict((s, c) for s, c in gathers),
    }
