"""Cluster configuration bundling the node and network models."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.costdb import krak_node_model
from repro.machine.hierarchy import HierarchicalNetwork, es45_hierarchical_network
from repro.machine.network import QSNET_LIKE, NetworkModel, make_network
from repro.machine.node import NodeModel


@dataclass(frozen=True)
class ClusterConfig:
    """A simulated parallel machine: compute costs plus interconnect.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"es45-qsnet-like"``.
    node:
        Per-processor compute-cost model.
    network:
        Point-to-point message-cost model (Equation 4 form).  When
        ``hierarchy`` is set this is the *inter-node* fabric; the analytic
        model keeps using it (or a blended flat equivalent).
    send_overhead, recv_overhead:
        CPU time charged on the sender when posting an asynchronous send and
        on the receiver when completing a blocking receive.  These are host
        overheads *in addition to* the wire cost and are what makes message
        overlap in the simulator imperfect, as on the real machine.
    hierarchy:
        Optional SMP-aware two-level network; when present, the simulator
        charges intra-node messages at shared-memory cost and collectives
        use the node-then-leader tree.
    """

    name: str
    node: NodeModel
    network: NetworkModel
    send_overhead: float = 1.5e-6
    recv_overhead: float = 2.0e-6
    hierarchy: HierarchicalNetwork | None = None

    def __post_init__(self) -> None:
        if self.send_overhead < 0 or self.recv_overhead < 0:
            raise ValueError("host overheads must be non-negative")

    def network_for(self, src: int, dst: int) -> NetworkModel:
        """The flat network applicable to a rank pair."""
        if self.hierarchy is None:
            return self.network
        return self.hierarchy.network_for(src, dst)

    def with_network(self, network: NetworkModel) -> "ClusterConfig":
        """Copy of this cluster with a different interconnect."""
        return replace(self, network=network, name=f"{self.name}+{network.name}")

    def with_node(self, node: NodeModel) -> "ClusterConfig":
        """Copy of this cluster with different compute costs."""
        return replace(self, node=node)

    def with_smp(
        self,
        ranks_per_node: int = 4,
        intra_latency: float = 3e-6,
        intra_bandwidth: float = 1.2e9,
        intra_send_overhead: float | None = None,
        intra_recv_overhead: float | None = None,
    ) -> "ClusterConfig":
        """Copy of this cluster with an ES-45-style SMP hierarchy enabled.

        ``intra_send_overhead`` / ``intra_recv_overhead`` optionally lower
        the per-message host overheads for on-node messages (a shared-memory
        transport bypasses the NIC); ``None`` keeps the flat overheads on
        every message, bitwise-identical to the placement-unaware machine.
        """
        hierarchy = es45_hierarchical_network(
            self.network,
            intra_latency=intra_latency,
            intra_bandwidth=intra_bandwidth,
            ranks_per_node=ranks_per_node,
            intra_send_overhead=intra_send_overhead,
            intra_recv_overhead=intra_recv_overhead,
        )
        return replace(
            self, hierarchy=hierarchy, name=f"{self.name}+smp{ranks_per_node}"
        )

    def with_placement(self, placement) -> "ClusterConfig":
        """Copy of this SMP cluster under an explicit rank→node map.

        Requires the SMP hierarchy (enable it first with :meth:`with_smp`);
        the placement's capacity must match the hierarchy's
        ``ranks_per_node``.

        >>> cluster = es45_like_cluster().with_smp()
        >>> from repro.placement import round_robin_placement
        >>> placed = cluster.with_placement(round_robin_placement(8, 4))
        >>> placed.name
        'es45-qsnet-like+smp4+round-robin'
        >>> placed.network_for(0, 1) is placed.hierarchy.inter  # adjacent ranks split
        True
        >>> placed.network_for(0, 2) is placed.hierarchy.intra  # stride-2 shares a node
        True
        """
        if self.hierarchy is None:
            raise ValueError(
                "placement requires an SMP hierarchy; call with_smp() first"
            )
        return replace(
            self,
            hierarchy=self.hierarchy.with_placement(placement),
            name=f"{self.name}+{placement.name}",
        )


def es45_like_cluster(
    speed: float = 1.0,
    jitter_frac: float = 0.015,
    seed: int = 0,
    network: NetworkModel | None = None,
) -> ClusterConfig:
    """The default validation machine: ES-45-like nodes on a QsNet-like net."""
    return ClusterConfig(
        name="es45-qsnet-like",
        node=krak_node_model(speed=speed, jitter_frac=jitter_frac, seed=seed),
        network=QSNET_LIKE if network is None else network,
    )
