"""Single-processor compute-cost model.

The "measured" per-phase, per-rank computation time charged by the
discrete-event simulator is

``T(p, rank) = overhead[p] + cache(n) · Σ_m cell_cost[p, m] · work[m]``

where ``n`` is the rank's total local cell count and ``work[m]`` the
(possibly multiplier-weighted) cell count per material.  The ``overhead[p]``
floor produces the Figure-3 knee: per-cell cost ``T/n`` is flat for large
``n`` and rises as ``1/n`` once subgrids shrink below
``overhead / cell_cost`` cells.  A deterministic per-(rank, phase) jitter
models real-machine variability so the max-over-ranks in Equation (3) is a
meaningful statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_float_array


def _hash_jitter(rank: int, phase: int, iteration: int, seed: int) -> float:
    """Deterministic pseudo-random value in [-1, 1) from a 64-bit mix."""
    x = (
        (rank + 1) * 0x9E3779B97F4A7C15
        ^ (phase + 1) * 0xC2B2AE3D27D4EB4F
        ^ (iteration + 1) * 0x165667B19E3779F9
        ^ (seed + 1) * 0x27D4EB2F165667C5
    ) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    return (x / 2**63) - 1.0


@dataclass(frozen=True)
class NodeModel:
    """Per-processor compute-cost parameters.

    Attributes
    ----------
    phase_overhead:
        Fixed per-phase cost per rank, shape ``(num_phases,)`` seconds.
    cell_cost:
        Per-cell cost, shape ``(num_phases, num_materials)`` seconds.
    cache_cells:
        Working-set scale (cells) beyond which the cache penalty saturates.
    cache_penalty:
        Fractional slowdown for out-of-cache subgrids (0 disables).
    jitter_frac:
        Amplitude of deterministic per-(rank, phase, iteration) compute
        jitter as a fraction of the cost (0 disables).
    seed:
        Seed folded into the jitter hash.
    """

    phase_overhead: np.ndarray
    cell_cost: np.ndarray
    cache_cells: float = 40000.0
    cache_penalty: float = 0.20
    jitter_frac: float = 0.015
    seed: int = 0

    def __post_init__(self) -> None:
        ov = as_float_array(self.phase_overhead, "phase_overhead")
        cc = as_float_array(self.cell_cost, "cell_cost")
        object.__setattr__(self, "phase_overhead", ov)
        object.__setattr__(self, "cell_cost", cc)
        if cc.ndim != 2 or cc.shape[0] != ov.shape[0]:
            raise ValueError("cell_cost must be (num_phases, num_materials)")
        if np.any(ov < 0) or np.any(cc < 0):
            raise ValueError("costs must be non-negative")
        if not 0 <= self.cache_penalty < 10:
            raise ValueError("cache_penalty out of sane range")
        if not 0 <= self.jitter_frac < 0.5:
            raise ValueError("jitter_frac out of sane range")

    @property
    def num_phases(self) -> int:
        """Number of iteration phases this model covers."""
        return int(self.phase_overhead.shape[0])

    @property
    def num_materials(self) -> int:
        """Number of materials this model covers."""
        return int(self.cell_cost.shape[1])

    def cache_factor(self, total_cells: float) -> float:
        """Multiplicative slowdown for a subgrid of ``total_cells`` cells.

        Smoothly rises from 1 (fits in cache) to ``1 + cache_penalty``.
        """
        if total_cells <= 0:
            return 1.0
        return 1.0 + self.cache_penalty * total_cells / (total_cells + self.cache_cells)

    def phase_time(
        self,
        phase: int,
        work_by_material: np.ndarray,
        rank: int = 0,
        iteration: int = 0,
        with_jitter: bool = True,
    ) -> float:
        """Compute time of one phase on one rank.

        Parameters
        ----------
        phase:
            0-based phase index.
        work_by_material:
            Effective cell counts per material (the hydro workload census may
            scale raw counts by activity multipliers, e.g. actively-burning
            HE cells cost more).
        rank, iteration:
            Identify the jitter stream.
        with_jitter:
            Disable for noise-free queries (used by unit tests).
        """
        if not 0 <= phase < self.num_phases:
            raise ValueError(f"phase must lie in [0, {self.num_phases}), got {phase}")
        work = np.asarray(work_by_material, dtype=np.float64)
        if work.shape != (self.num_materials,):
            raise ValueError(
                f"work_by_material must have shape ({self.num_materials},)"
            )
        if np.any(work < 0):
            raise ValueError("work counts must be non-negative")
        n = float(work.sum())
        base = float(self.phase_overhead[phase]) + self.cache_factor(n) * float(
            self.cell_cost[phase] @ work
        )
        if with_jitter and self.jitter_frac:
            base *= 1.0 + self.jitter_frac * _hash_jitter(
                rank, phase, iteration, self.seed
            )
        return base

    def per_cell_cost(self, phase: int, material: int, cells: float) -> float:
        """Noise-free per-cell cost ``T/n`` for a pure-material subgrid.

        This is the quantity plotted in Figure 3: flat for large ``cells``,
        rising as ``1/cells`` below the knee.
        """
        if cells <= 0:
            raise ValueError("cells must be positive")
        work = np.zeros(self.num_materials)
        work[material] = cells
        return self.phase_time(phase, work, with_jitter=False) / cells
