"""Piecewise-linear message-cost model (the paper's Equation 4).

``Tmsg(S) = L(S) + S · TB(S)`` where both the start-up cost ``L`` and the
per-byte cost ``TB`` are piecewise-constant in the message size ``S`` —
exactly the form the paper fits to ping-pong measurements.  The default
parameters are QsNet-I-like: a few tens of microseconds of MPI small-message
latency and ~300 MB/s sustained bandwidth, with a latency step at the
eager→rendezvous protocol switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import as_float_array, check_nonnegative


@dataclass(frozen=True)
class NetworkModel:
    """Piecewise-linear point-to-point message cost.

    Attributes
    ----------
    breakpoints:
        Ascending message sizes (bytes) where a new segment begins; the
        first segment implicitly starts at size 0.
    latency:
        Start-up cost ``L(S)`` per segment, seconds, one entry per segment
        (``len(breakpoints) + 1``).
    per_byte:
        Per-byte cost ``TB(S)`` per segment, seconds/byte, aligned with
        ``latency``.
    name:
        Human-readable label.
    """

    breakpoints: np.ndarray
    latency: np.ndarray
    per_byte: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        bp = as_float_array(self.breakpoints, "breakpoints")
        lat = as_float_array(self.latency, "latency")
        pb = as_float_array(self.per_byte, "per_byte")
        object.__setattr__(self, "breakpoints", bp)
        object.__setattr__(self, "latency", lat)
        object.__setattr__(self, "per_byte", pb)
        if np.any(np.diff(bp) <= 0):
            raise ValueError("breakpoints must be strictly ascending")
        if lat.shape != pb.shape or lat.shape[0] != bp.shape[0] + 1:
            raise ValueError(
                "latency and per_byte need len(breakpoints) + 1 entries each"
            )
        if np.any(lat < 0) or np.any(pb < 0):
            raise ValueError("latency and per_byte must be non-negative")
        # Memoisation for the simulator/model hot paths.  Message sizes in a
        # run come from a small repeated set (per-face/per-node constants ×
        # census counts), so per-size caching removes nearly every
        # searchsorted from the event loop.  Values are identical to the
        # uncached paths; these are plain dicts, not dataclass fields.
        object.__setattr__(self, "_tmsg_cache", {})
        object.__setattr__(self, "_send_cache", {})

    def segment_of(self, size) -> np.ndarray:
        """Segment index for message size(s) ``size``.

        A size exactly at a breakpoint belongs to the segment *below* it
        (an eager-threshold-sized message still goes eagerly).
        """
        return np.searchsorted(self.breakpoints, np.asarray(size, dtype=np.float64), side="left")

    def tmsg(self, size):
        """Equation (4): time to send ``size`` bytes point-to-point.

        Accepts scalars or arrays; zero-byte messages still pay the
        small-message latency (a zero-size MPI message is not free).
        """
        size_arr = np.asarray(size, dtype=np.float64)
        if np.any(size_arr < 0):
            raise ValueError("message size must be non-negative")
        seg = self.segment_of(size_arr)
        out = self.latency[seg] + size_arr * self.per_byte[seg]
        return float(out) if np.isscalar(size) or size_arr.ndim == 0 else out

    def tmsg_many(self, sizes: np.ndarray) -> np.ndarray:
        """Batched Equation (4): one piecewise-linear evaluation per entry.

        The vectorized hot path behind the boundary-exchange, ghost-update,
        and collective models: each output element is bitwise identical to
        the scalar :meth:`tmsg` of the same size.

        Contract: ``sizes`` must be a non-negative float64 array.  This
        method deliberately performs NO validation — that is what makes it
        the hot path — so results for negative sizes are undefined; use
        :meth:`tmsg` when the input is not already validated.
        """
        seg = self.breakpoints.searchsorted(sizes, side="left")
        return self.latency[seg] + sizes * self.per_byte[seg]

    def tmsg_cached(self, size) -> float:
        """Memoised scalar :meth:`tmsg` for the simulator's repeated sizes."""
        cached = self._tmsg_cache.get(size)
        if cached is None:
            cached = self._tmsg_cache[size] = float(self.tmsg(size))
        return cached

    def send_times(self, size) -> tuple:
        """``(L(S), S · TB(S))`` with one segment lookup, memoised per size.

        The simulator charges both terms for every ``Isend``; this resolves
        the segment once and caches the pair, so the event loop pays a dict
        hit instead of two ``searchsorted`` calls per message.
        """
        cached = self._send_cache.get(size)
        if cached is None:
            s = float(size)
            if s < 0:
                raise ValueError("message size must be non-negative")
            seg = int(self.breakpoints.searchsorted(s, side="left"))
            cached = self._send_cache[size] = (
                float(self.latency[seg]),
                s * float(self.per_byte[seg]),
            )
        return cached

    def send_times_many(self, sizes: np.ndarray) -> tuple:
        """Batched :meth:`send_times`: ``(L(S), S · TB(S))`` arrays.

        One ``searchsorted`` sweep prices every message of a compiled
        program at once — the batch engine's counterpart of the per-size
        memoised scalar path.  Each element pair is bitwise identical to
        ``send_times`` of the same size.  Like :meth:`tmsg_many`, this is a
        no-validation hot path: ``sizes`` must be non-negative float64.
        """
        seg = self.breakpoints.searchsorted(sizes, side="left")
        return self.latency[seg], sizes * self.per_byte[seg]

    def bandwidth_time(self, size) -> float:
        """Only the ``S · TB(S)`` term — the NIC-serialised component."""
        size_arr = np.asarray(size, dtype=np.float64)
        seg = self.segment_of(size_arr)
        out = size_arr * self.per_byte[seg]
        return float(out) if np.isscalar(size) or size_arr.ndim == 0 else out

    def startup_time(self, size) -> float:
        """Only the ``L(S)`` term — pipelines across back-to-back sends."""
        seg = self.segment_of(np.asarray(size, dtype=np.float64))
        out = self.latency[seg]
        return float(out) if np.isscalar(size) else out


def make_network(
    small_latency: float = 18e-6,
    large_latency: float = 36e-6,
    eager_threshold: float = 4096.0,
    bandwidth_bytes_per_s: float = 300e6,
    name: str = "custom",
) -> NetworkModel:
    """Convenience two-segment network: eager below the threshold, rendezvous above.

    >>> net = make_network(small_latency=2e-6, large_latency=4e-6,
    ...                    eager_threshold=1024.0, bandwidth_bytes_per_s=1e9)
    >>> net.tmsg(0)  # a zero-byte message still pays the eager latency
    2e-06
    >>> int(net.segment_of(1024)), int(net.segment_of(1025))  # threshold stays eager
    (0, 1)
    >>> net.tmsg(1024) == 2e-06 + 1024 * 1e-09
    True
    """
    check_nonnegative(small_latency, "small_latency")
    check_nonnegative(large_latency, "large_latency")
    per_byte = 1.0 / bandwidth_bytes_per_s
    return NetworkModel(
        breakpoints=np.array([eager_threshold]),
        latency=np.array([small_latency, large_latency]),
        per_byte=np.array([per_byte, per_byte]),
        name=name,
    )


#: Default QsNet-I-like parameters (MPI-level, including software overheads;
#: the effective small-message cost is well above the wire latency, as on
#: the real ES-45/QsNet system once MPI and scheduling noise are counted).
QSNET_LIKE = make_network(
    small_latency=18e-6,
    large_latency=36e-6,
    eager_threshold=4096.0,
    bandwidth_bytes_per_s=300e6,
    name="qsnet-like",
)
