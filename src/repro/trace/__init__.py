"""External trace ingestion, synthesis, and replay.

This package is the repository's external-data surface: versioned JSON
phase logs from real (or simulated) runs come in, fitted model parameters
and model-vs-measured error reports come out.

* :mod:`repro.trace.schema` — the ``repro-trace`` JSON document format
  (per-rank, per-iteration, per-phase compute times, message counts and
  bytes, ping-pong samples, machine metadata), with a validating reader
  that normalises runs into the engine's :class:`~repro.simmpi.PhaseTrace`
  shape;
* :mod:`repro.trace.synthetic` — generate a schema-conforming trace from
  the simulated machine itself (the round-trip test harness and the CI
  smoke lane's data source);
* :mod:`repro.trace.replay` — run an ingested deck/partition through the
  engine against a fitted calibration and report per-phase, per-rank
  model-vs-measured error, like the paper's Tables 5–6 for any
  user-supplied machine.

The parameter fitting itself lives in :mod:`repro.perfmodel.calibrate`
(:func:`~repro.perfmodel.calibrate.fit_cost_table`,
:func:`~repro.perfmodel.calibrate.fit_network`, and the
:class:`~repro.perfmodel.calibrate.FittedCalibration` artifact).
"""

from repro.trace.replay import RunReport, fit_calibration, replay_calibration
from repro.trace.schema import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    TraceDoc,
    TraceFormatError,
    TraceMachine,
    TraceRun,
    load_trace,
    save_trace,
)
from repro.trace.synthetic import default_pingpong_sizes, synthesize_trace

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "RunReport",
    "TraceDoc",
    "TraceFormatError",
    "TraceMachine",
    "TraceRun",
    "default_pingpong_sizes",
    "fit_calibration",
    "load_trace",
    "replay_calibration",
    "save_trace",
    "synthesize_trace",
]
