"""Fit a trace, replay it through the engine, report model-vs-measured.

The closed loop of the calibration subsystem:

1. :func:`fit_calibration` — recover per-phase material costs
   (:func:`~repro.perfmodel.calibrate.fit_cost_table`) and network
   ``latency``/``per_byte``
   (:func:`~repro.perfmodel.calibrate.fit_network`) from a validated
   :class:`~repro.trace.schema.TraceDoc`, warm-up iterations excluded.
2. :func:`replay_calibration` — rebuild each traced run's deck and
   partition, run the engine against the *fitted* parameters (zero
   overhead, zero jitter — the analytic model's view of the machine), and
   compare the replayed steady-state windows with the measured ones.

The result is one :class:`RunReport` per traced run: total iteration time,
per-phase maxima, and per-rank compute totals, model vs measured — the
paper's Tables 5–6 shape, for any machine a trace describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parsing import as_deck_size
from repro.hydro.driver import run_krak
from repro.machine.cluster import ClusterConfig
from repro.machine.node import NodeModel
from repro.mesh.connectivity import build_face_table
from repro.mesh.deck import build_deck
from repro.partition.cache import cached_partition
from repro.perfmodel.calibrate import FittedCalibration, fit_cost_table, fit_network
from repro.trace.schema import TraceDoc, TraceRun

__all__ = ["RunReport", "fit_calibration", "replay_calibration"]


def fit_calibration(doc: TraceDoc, warmup: int | None = None) -> FittedCalibration:
    """Fit model parameters to ``doc``'s steady-state windows.

    ``warmup`` overrides every run's own warm-up count when given.  The
    network fit uses the document's ping-pong ladder and the machine's
    declared protocol breakpoints; host send/receive overheads are taken
    from the machine metadata as-is.  The returned artifact's ``meta``
    records the provenance (deck, machine, rank counts, trace content key).
    """
    samples = [
        (run.material_cells, run.steady_compute(warmup)) for run in doc.runs
    ]
    table = fit_cost_table(samples)
    network = fit_network(
        doc.pingpong_bytes,
        doc.pingpong_seconds,
        breakpoints=doc.machine.network_breakpoints,
        name=f"fitted-{doc.machine.name}",
    )
    return FittedCalibration(
        table=table,
        network=network,
        send_overhead=doc.machine.send_overhead,
        recv_overhead=doc.machine.recv_overhead,
        meta={
            "deck": doc.deck,
            "machine": doc.machine.name,
            "ranks": [run.ranks for run in doc.runs],
            "iterations": [run.iterations for run in doc.runs],
            "trace_key": doc.content_key(),
        },
    )


@dataclass(frozen=True)
class RunReport:
    """Model-vs-measured comparison for one traced run.

    ``phase_*`` arrays are max-over-ranks compute + communication seconds
    per phase per steady iteration (Equation 3's statistic); ``rank_*``
    arrays are per-rank total compute seconds per steady iteration.
    """

    ranks: int
    cells_per_rank: float
    measured_seconds: float
    replayed_seconds: float
    phase_measured: np.ndarray
    phase_replayed: np.ndarray
    rank_compute_measured: np.ndarray
    rank_compute_replayed: np.ndarray

    @property
    def seconds_error(self) -> float:
        """Signed relative error of total iteration time (model − measured)."""
        return (self.replayed_seconds - self.measured_seconds) / self.measured_seconds

    @property
    def phase_errors(self) -> np.ndarray:
        """Signed relative error per phase; 0 where both sides are ~0."""
        scale = np.maximum(np.abs(self.phase_measured), 1e-300)
        err = (self.phase_replayed - self.phase_measured) / scale
        both_zero = (self.phase_measured == 0) & (self.phase_replayed == 0)
        return np.where(both_zero, 0.0, err)

    @property
    def max_abs_phase_error(self) -> float:
        """Worst per-phase relative error magnitude."""
        return float(np.abs(self.phase_errors).max())


def _fitted_cluster(
    calibration: FittedCalibration, cells_per_rank: float, num_phases: int
) -> ClusterConfig:
    """The machine the fitted parameters describe, as a live cluster.

    Per-cell costs are evaluated at the run's own cells-per-rank abscissa
    and installed directly: no separate overhead, cache penalty, or jitter
    — those effects are already folded into the fitted knots, which is the
    convention :func:`~repro.perfmodel.calibrate.fit_cost_table` documents.
    """
    table = calibration.table
    cell_cost = np.stack(
        [table.per_cell_vector(p, cells_per_rank) for p in range(table.num_phases)]
    )
    if table.num_phases < num_phases:
        # Traced runs can carry extra bookkeeping phases (repartition,
        # checkpoint) past the fitted ones; they replay at zero cost.
        pad = np.zeros((num_phases - table.num_phases, cell_cost.shape[1]))
        cell_cost = np.vstack([cell_cost, pad])
    node = NodeModel(
        phase_overhead=np.zeros(cell_cost.shape[0]),
        cell_cost=cell_cost,
        cache_penalty=0.0,
        jitter_frac=0.0,
    )
    return ClusterConfig(
        name=f"replay-{calibration.network.name}",
        node=node,
        network=calibration.network,
        send_overhead=calibration.send_overhead,
        recv_overhead=calibration.recv_overhead,
    )


def _measured_summary(run: TraceRun, warmup: int):
    """Measured steady-state summaries straight from the trace arrays."""
    compute = run.steady_compute(warmup)
    comm = run.steady_comm(warmup)
    if comm is None:
        comm = np.zeros_like(compute)
    phase = (compute + comm).max(axis=0)
    seconds = run.steady_iteration_seconds(warmup)
    if seconds is None:
        # No global iteration timer in the trace: the per-rank critical
        # path is the closest measured stand-in.
        seconds = float((compute + comm).sum(axis=1).max())
    return seconds, phase, compute.sum(axis=1)


def replay_calibration(
    doc: TraceDoc, calibration: FittedCalibration, warmup: int | None = None
) -> tuple:
    """Replay every run in ``doc`` against ``calibration``.

    Returns one :class:`RunReport` per run, in document order.  Decks and
    partitions are rebuilt exactly as traced (same method, same seed); the
    engine then runs the same iteration count and the same steady window is
    compared on both sides.
    """
    deck = build_deck(as_deck_size(doc.deck))
    faces = build_face_table(deck.mesh)
    reports = []
    for run in doc.runs:
        w = run.warmup if warmup is None else warmup
        cluster = _fitted_cluster(calibration, run.cells_per_rank, run.num_phases)
        partition = cached_partition(
            deck, run.ranks, method=run.partition_method, seed=run.seed, faces=faces
        )
        replayed = run_krak(
            deck, partition, cluster=cluster, iterations=run.iterations, faces=faces
        )
        trace = replayed.result.trace
        scale = 1.0 / (run.iterations - w)
        rep_compute = trace.window_compute(w, run.iterations) * scale
        rep_comm = trace.window_comm(w, run.iterations) * scale
        measured_seconds, phase_measured, rank_measured = _measured_summary(run, w)
        reports.append(
            RunReport(
                ranks=run.ranks,
                cells_per_rank=run.cells_per_rank,
                measured_seconds=measured_seconds,
                replayed_seconds=trace.mean_iteration_time(w, run.iterations),
                phase_measured=phase_measured,
                phase_replayed=(rep_compute + rep_comm).max(axis=0),
                rank_compute_measured=rank_measured,
                rank_compute_replayed=rep_compute.sum(axis=1),
            )
        )
    return tuple(reports)
