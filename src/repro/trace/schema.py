"""The versioned ``repro-trace`` JSON phase-log format.

One trace document describes a set of runs of **one deck** on **one
machine**: for every run, per-rank, per-iteration, per-phase compute (and
optionally communication) seconds, the per-rank material census, and
per-rank message counts/bytes; document-wide, the machine metadata needed
to fit network parameters (protocol-switch breakpoints, host overheads)
and a ladder of ping-pong message-timing samples.

The reader (:func:`load_trace` / :meth:`TraceDoc.from_payload`) validates
shapes and value ranges loudly, normalises everything into float64 arrays,
and can rebuild each run as a :class:`~repro.simmpi.PhaseTrace`
(:meth:`TraceRun.phase_trace`), so every windowed summary the engine's own
traces support — warm-up-excluded phase breakdowns in particular — works
identically on ingested external data.

Schema (version 1)::

    {
      "schema": "repro-trace",
      "version": 1,
      "deck": "16x8",                      // any core deck spec
      "num_phases": 15,
      "machine": {
        "name": "es45-qsnet-like",
        "network_breakpoints": [4096.0],   // protocol-switch sizes (bytes)
        "send_overhead": 1.5e-6,           // per-message host costs (s)
        "recv_overhead": 2.0e-6
      },
      "pingpong": [{"bytes": 64.0, "seconds": 1.82e-5}, ...],
      "runs": [
        {
          "ranks": 4,
          "iterations": 4,
          "warmup": 1,
          "partition_method": "block",
          "seed": 1,
          "material_cells": [[...per material] per rank],
          "compute": [[[...per phase] per rank] per iteration],
          "comm": [[[...]]] | null,
          "iteration_seconds": [...] | null,
          "messages": [{"count": 12, "bytes": 38400.0} per rank] | null
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.simmpi.tracing import PhaseTrace
from repro.util.artifacts import stable_hash

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "TraceDoc",
    "TraceFormatError",
    "TraceMachine",
    "TraceRun",
    "load_trace",
    "save_trace",
]

TRACE_SCHEMA = "repro-trace"
TRACE_VERSION = 1


class TraceFormatError(ValueError):
    """An ingested trace document violates the schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceFormatError(message)


def _float_array(value, name: str, ndim: int) -> np.ndarray:
    try:
        arr = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"{name} is not numeric: {exc}") from None
    _require(arr.ndim == ndim, f"{name} must be {ndim}-D, got shape {arr.shape}")
    _require(bool(np.all(np.isfinite(arr))), f"{name} contains non-finite values")
    _require(bool(np.all(arr >= 0)), f"{name} contains negative values")
    return arr


@dataclass(frozen=True)
class TraceMachine:
    """Machine metadata a trace carries about the system it was measured on.

    ``network_breakpoints`` are the known protocol-switch message sizes
    (e.g. the eager→rendezvous threshold); the network fitter recovers one
    ``latency``/``per_byte`` pair per segment between them.  The host
    overheads are the per-message CPU costs charged on send/receive —
    external traces that cannot measure them separately may leave the
    defaults of 0.
    """

    name: str = "traced"
    network_breakpoints: tuple = ()
    send_overhead: float = 0.0
    recv_overhead: float = 0.0

    def __post_init__(self) -> None:
        bp = tuple(float(b) for b in self.network_breakpoints)
        object.__setattr__(self, "network_breakpoints", bp)
        _require(
            all(b > 0 for b in bp) and list(bp) == sorted(set(bp)),
            "network_breakpoints must be positive and strictly ascending",
        )
        _require(
            self.send_overhead >= 0 and self.recv_overhead >= 0,
            "host overheads must be non-negative",
        )

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "network_breakpoints": list(self.network_breakpoints),
            "send_overhead": self.send_overhead,
            "recv_overhead": self.recv_overhead,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceMachine":
        _require(isinstance(payload, dict), "machine must be an object")
        return cls(
            name=str(payload.get("name", "traced")),
            network_breakpoints=tuple(payload.get("network_breakpoints", ())),
            send_overhead=float(payload.get("send_overhead", 0.0)),
            recv_overhead=float(payload.get("recv_overhead", 0.0)),
        )


@dataclass(frozen=True)
class TraceRun:
    """One run of the traced application at a fixed rank count.

    Attributes
    ----------
    ranks, iterations, warmup:
        Run extents; summaries sample the steady window
        ``[warmup, iterations)`` only.
    partition_method, seed:
        How the deck was split across ranks, in the repository's partition
        vocabulary — what makes the run replayable.
    compute:
        ``(iterations, ranks, phases)`` computation seconds.
    comm:
        Optional ``(iterations, ranks, phases)`` communication seconds.
    material_cells:
        ``(ranks, materials)`` cell counts — the fitter's design matrix.
    iteration_seconds:
        Optional per-iteration wall seconds (max over ranks).
    messages:
        Optional per-rank ``{"count", "bytes"}`` point-to-point totals.
    """

    ranks: int
    iterations: int
    compute: np.ndarray
    material_cells: np.ndarray
    comm: np.ndarray | None = None
    iteration_seconds: np.ndarray | None = None
    messages: tuple | None = None
    partition_method: str = "block"
    seed: int = 1
    warmup: int = 1

    def __post_init__(self) -> None:
        _require(self.ranks >= 1, "ranks must be >= 1")
        _require(
            self.iterations >= 2,
            "a trace run needs iterations >= 2: the warm-up iteration is "
            "excluded from every fitted sample",
        )
        _require(
            0 <= self.warmup < self.iterations,
            "need 0 <= warmup < iterations",
        )
        compute = _float_array(self.compute, "compute", 3)
        _require(
            compute.shape[0] == self.iterations and compute.shape[1] == self.ranks,
            f"compute must be (iterations={self.iterations}, ranks={self.ranks}, "
            f"phases), got {compute.shape}",
        )
        object.__setattr__(self, "compute", compute)
        cells = _float_array(self.material_cells, "material_cells", 2)
        _require(
            cells.shape[0] == self.ranks,
            f"material_cells must have one row per rank, got {cells.shape}",
        )
        object.__setattr__(self, "material_cells", cells)
        if self.comm is not None:
            comm = _float_array(self.comm, "comm", 3)
            _require(
                comm.shape == compute.shape,
                f"comm shape {comm.shape} must match compute {compute.shape}",
            )
            object.__setattr__(self, "comm", comm)
        if self.iteration_seconds is not None:
            its = _float_array(self.iteration_seconds, "iteration_seconds", 1)
            _require(
                its.shape == (self.iterations,),
                f"iteration_seconds needs {self.iterations} entries, got {its.shape}",
            )
            object.__setattr__(self, "iteration_seconds", its)
        if self.messages is not None:
            msgs = tuple(
                {"count": int(m["count"]), "bytes": float(m["bytes"])}
                for m in self.messages
            )
            _require(
                len(msgs) == self.ranks,
                f"messages needs one entry per rank ({self.ranks}), got {len(msgs)}",
            )
            _require(
                all(m["count"] >= 0 and m["bytes"] >= 0 for m in msgs),
                "message counts/bytes must be non-negative",
            )
            object.__setattr__(self, "messages", msgs)

    @property
    def num_phases(self) -> int:
        return int(self.compute.shape[2])

    @property
    def cells_per_rank(self) -> float:
        """Mean cells per processor — the run's curve-knot abscissa."""
        return float(self.material_cells.sum() / self.ranks)

    # ---------------------------------------------------------- summaries

    def steady_compute(self, warmup: int | None = None) -> np.ndarray:
        """Mean per-``(rank, phase)`` compute seconds over the steady window."""
        w = self.warmup if warmup is None else warmup
        _require(0 <= w < self.iterations, "need 0 <= warmup < iterations")
        return self.compute[w:].mean(axis=0)

    def steady_comm(self, warmup: int | None = None) -> np.ndarray | None:
        """Mean per-``(rank, phase)`` communication seconds, if recorded."""
        if self.comm is None:
            return None
        w = self.warmup if warmup is None else warmup
        _require(0 <= w < self.iterations, "need 0 <= warmup < iterations")
        return self.comm[w:].mean(axis=0)

    def steady_iteration_seconds(self, warmup: int | None = None) -> float | None:
        """Mean steady-state per-iteration wall seconds, if recorded."""
        if self.iteration_seconds is None:
            return None
        w = self.warmup if warmup is None else warmup
        _require(0 <= w < self.iterations, "need 0 <= warmup < iterations")
        return float(self.iteration_seconds[w:].mean())

    def phase_trace(self) -> PhaseTrace:
        """Normalise this run into the engine's :class:`PhaseTrace` shape.

        Iteration marks are reconstructed from the cumulative per-iteration
        sums, so every window summary (``window_compute``,
        ``mean_iteration_time``, …) behaves exactly as on an engine-produced
        trace.  Per-rank clocks are not part of the schema; all ranks share
        the document's per-iteration wall times (zeros when absent), which
        leaves per-phase windows exact and iteration windows exact to
        within the skew the original system already hid in its global
        iteration timer.
        """
        trace = PhaseTrace(self.ranks, self.num_phases)
        compute_cum = np.cumsum(self.compute, axis=0)
        comm = self.comm if self.comm is not None else np.zeros_like(self.compute)
        comm_cum = np.cumsum(comm, axis=0)
        if self.iteration_seconds is not None:
            clocks = np.concatenate([[0.0], np.cumsum(self.iteration_seconds)])
        else:
            clocks = np.zeros(self.iterations + 1)
        zero = np.zeros(self.num_phases)
        marks = []
        for index in range(self.iterations + 1):
            for rank in range(self.ranks):
                comp_row = zero if index == 0 else compute_cum[index - 1, rank]
                comm_row = zero if index == 0 else comm_cum[index - 1, rank]
                marks.append((rank, index, float(clocks[index]), comp_row, comm_row))
        trace.load_batch(compute_cum[-1], comm_cum[-1], marks)
        return trace

    # ------------------------------------------------------- serialization

    def to_payload(self) -> dict:
        payload = {
            "ranks": self.ranks,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "partition_method": self.partition_method,
            "seed": self.seed,
            "material_cells": self.material_cells.tolist(),
            "compute": self.compute.tolist(),
            "comm": None if self.comm is None else self.comm.tolist(),
            "iteration_seconds": (
                None
                if self.iteration_seconds is None
                else self.iteration_seconds.tolist()
            ),
            "messages": None if self.messages is None else list(self.messages),
        }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceRun":
        _require(isinstance(payload, dict), "run must be an object")
        for key in ("ranks", "iterations", "material_cells", "compute"):
            _require(key in payload, f"run is missing required key {key!r}")
        return cls(
            ranks=int(payload["ranks"]),
            iterations=int(payload["iterations"]),
            warmup=int(payload.get("warmup", 1)),
            partition_method=str(payload.get("partition_method", "block")),
            seed=int(payload.get("seed", 1)),
            material_cells=payload["material_cells"],
            compute=payload["compute"],
            comm=payload.get("comm"),
            iteration_seconds=payload.get("iteration_seconds"),
            messages=payload.get("messages"),
        )


@dataclass(frozen=True)
class TraceDoc:
    """A full ``repro-trace`` document: one deck, one machine, many runs."""

    deck: str
    machine: TraceMachine
    num_phases: int
    runs: tuple
    pingpong_bytes: np.ndarray = field(default_factory=lambda: np.zeros(0))
    pingpong_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        _require(bool(self.deck), "deck spec must be non-empty")
        _require(self.num_phases >= 1, "num_phases must be >= 1")
        runs = tuple(self.runs)
        _require(len(runs) >= 1, "a trace needs at least one run")
        for i, run in enumerate(runs):
            _require(
                run.num_phases == self.num_phases,
                f"run {i} has {run.num_phases} phases, document says "
                f"{self.num_phases}",
            )
        object.__setattr__(self, "runs", runs)
        pp_bytes = _float_array(self.pingpong_bytes, "pingpong bytes", 1)
        pp_seconds = _float_array(self.pingpong_seconds, "pingpong seconds", 1)
        _require(
            pp_bytes.shape == pp_seconds.shape,
            "pingpong bytes and seconds must be parallel arrays",
        )
        object.__setattr__(self, "pingpong_bytes", pp_bytes)
        object.__setattr__(self, "pingpong_seconds", pp_seconds)

    def content_key(self) -> str:
        """Content hash of the full document (the fit artifact's identity)."""
        return stable_hash({"kind": TRACE_SCHEMA, "doc": self.to_payload()})

    # ------------------------------------------------------- serialization

    def to_payload(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "deck": self.deck,
            "num_phases": self.num_phases,
            "machine": self.machine.to_payload(),
            "pingpong": [
                {"bytes": float(b), "seconds": float(s)}
                for b, s in zip(self.pingpong_bytes, self.pingpong_seconds)
            ],
            "runs": [run.to_payload() for run in self.runs],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceDoc":
        _require(isinstance(payload, dict), "trace document must be an object")
        _require(
            payload.get("schema") == TRACE_SCHEMA,
            f"not a {TRACE_SCHEMA} document (schema={payload.get('schema')!r})",
        )
        _require(
            payload.get("version") == TRACE_VERSION,
            f"unsupported trace version {payload.get('version')!r} "
            f"(reader supports {TRACE_VERSION})",
        )
        for key in ("deck", "num_phases", "runs"):
            _require(key in payload, f"trace is missing required key {key!r}")
        pingpong = payload.get("pingpong", [])
        _require(isinstance(pingpong, list), "pingpong must be a list of samples")
        for sample in pingpong:
            _require(
                isinstance(sample, dict) and "bytes" in sample and "seconds" in sample,
                "each pingpong sample needs 'bytes' and 'seconds'",
            )
        return cls(
            deck=str(payload["deck"]),
            machine=TraceMachine.from_payload(payload.get("machine", {})),
            num_phases=int(payload["num_phases"]),
            runs=tuple(TraceRun.from_payload(r) for r in payload["runs"]),
            pingpong_bytes=[s["bytes"] for s in pingpong],
            pingpong_seconds=[s["seconds"] for s in pingpong],
        )


def save_trace(doc: TraceDoc, path) -> Path:
    """Write ``doc`` as canonical JSON (sorted keys) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc.to_payload(), sort_keys=True, indent=1))
    return path


def load_trace(path) -> TraceDoc:
    """Read and validate a trace document from ``path``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from None
    return TraceDoc.from_payload(payload)
