"""Generate a schema-conforming trace from the simulated machine itself.

This is the closed loop's test harness: the engine runs a deck on a known
cluster, and :func:`synthesize_trace` writes exactly what an instrumented
real application would log — per-rank, per-iteration, per-phase compute
and communication seconds, the material census, point-to-point message
counts/bytes, and a ping-pong message-timing ladder.  Because every number
came from known model parameters, fitting the trace back
(:func:`repro.trace.replay.fit_calibration`) must recover those parameters
— the round-trip property the calibration subsystem is tested against, and
the CI smoke lane's data source.
"""

from __future__ import annotations

import numpy as np

from repro.core.parsing import as_deck_size
from repro.hydro.driver import run_krak
from repro.hydro.phases import KrakProgram
from repro.machine.cluster import ClusterConfig, es45_like_cluster
from repro.machine.network import NetworkModel
from repro.mesh.deck import NUM_MATERIALS, build_deck
from repro.mesh.connectivity import build_face_table
from repro.partition.cache import cached_partition
from repro.simmpi.compile import OP_ISEND, ProgramWriter
from repro.trace.schema import TraceDoc, TraceMachine, TraceRun

__all__ = ["default_pingpong_sizes", "synthesize_trace"]


def default_pingpong_sizes(network: NetworkModel) -> np.ndarray:
    """A ping-pong size ladder with ≥3 distinct sizes in every segment.

    Segment membership follows the network's own convention
    (``searchsorted(breakpoints, size, side="left")``): a bounded segment
    ``(lo, hi]`` is sampled at 25 %, 50 %, and 100 % of its span, and the
    open last segment at 2×, 8×, and 32× its lower edge — enough points for
    the per-segment linear fit in
    :func:`repro.perfmodel.calibrate.fit_network` to be overdetermined.
    """
    sizes: list[float] = []
    lo = 0.0
    for hi in np.asarray(network.breakpoints, dtype=np.float64):
        span = float(hi) - lo
        sizes.extend(lo + span * f for f in (0.25, 0.5, 1.0))
        lo = float(hi)
    if lo == 0.0:
        sizes.extend([64.0, 4096.0, 65536.0])
    else:
        sizes.extend([lo * 2.0, lo * 8.0, lo * 32.0])
    return np.unique(np.asarray(sizes, dtype=np.float64))


def _count_messages(census, cluster: ClusterConfig, num_ranks: int, iterations: int):
    """Per-rank point-to-point ``{"count", "bytes"}`` totals.

    Each rank's program is lowered to its columnar op stream (the same
    lowering the batch engine executes) and the ``OP_ISEND`` rows are
    tallied — so counts/bytes are exactly what the run sent, not a model
    of it.
    """
    messages = []
    for rank in range(num_ranks):
        program = KrakProgram(
            rank=rank,
            census=census,
            node_model=cluster.node,
            state=None,
            iterations=iterations,
        )
        writer = ProgramWriter()
        if not program.lower_into(writer):  # pragma: no cover - census mode lowers
            return None
        compiled = writer.finish()
        sel = compiled.opcode == OP_ISEND
        messages.append(
            {"count": int(sel.sum()), "bytes": float(compiled.farg[sel].sum())}
        )
    return tuple(messages)


def synthesize_trace(
    deck: str = "16x8",
    ranks=(2, 4),
    cluster: ClusterConfig | None = None,
    iterations: int = 4,
    warmup: int = 1,
    partition_method: str = "block",
    seed: int = 1,
    pingpong_sizes=None,
) -> TraceDoc:
    """Run ``deck`` at each rank count on ``cluster`` and log a trace.

    Ping-pong samples are taken straight from the network's ``tmsg`` (a
    zero-noise ping-pong benchmark); per-phase windows come from the run's
    own :class:`~repro.simmpi.PhaseTrace` marks, iteration by iteration.
    Requires a flat cluster — the trace schema carries one network's
    breakpoints, which an SMP hierarchy's two fabrics would not fit.
    """
    if cluster is None:
        cluster = es45_like_cluster()
    if cluster.hierarchy is not None:
        raise ValueError(
            "synthesize_trace needs a flat cluster: the trace schema "
            "describes a single network"
        )
    deck_spec = str(deck)
    built = build_deck(as_deck_size(deck_spec))
    faces = build_face_table(built.mesh)

    runs = []
    num_phases = None
    for num_ranks in ranks:
        partition = cached_partition(
            built, int(num_ranks), method=partition_method, seed=seed, faces=faces
        )
        run = run_krak(
            built, partition, cluster=cluster, iterations=iterations, faces=faces
        )
        trace = run.result.trace
        compute = np.stack(
            [trace.window_compute(i, i + 1) for i in range(iterations)]
        )
        comm = np.stack([trace.window_comm(i, i + 1) for i in range(iterations)])
        iteration_seconds = np.array(
            [trace.iteration_time(i, i + 1) for i in range(iterations)]
        )
        num_phases = compute.shape[2]
        runs.append(
            TraceRun(
                ranks=int(num_ranks),
                iterations=iterations,
                warmup=warmup,
                partition_method=partition_method,
                seed=seed,
                compute=compute,
                comm=comm,
                iteration_seconds=iteration_seconds,
                material_cells=partition.material_census(
                    built.cell_material, NUM_MATERIALS
                ),
                messages=_count_messages(
                    run.census, cluster, int(num_ranks), iterations
                ),
            )
        )

    if pingpong_sizes is None:
        pingpong_sizes = default_pingpong_sizes(cluster.network)
    pingpong_sizes = np.asarray(pingpong_sizes, dtype=np.float64)
    pingpong_seconds = np.array(
        [float(cluster.network.tmsg(s)) for s in pingpong_sizes]
    )

    return TraceDoc(
        deck=deck_spec,
        machine=TraceMachine(
            name=cluster.name,
            network_breakpoints=tuple(
                float(b) for b in cluster.network.breakpoints
            ),
            send_overhead=cluster.send_overhead,
            recv_overhead=cluster.recv_overhead,
        ),
        num_phases=int(num_phases),
        runs=tuple(runs),
        pingpong_bytes=pingpong_sizes,
        pingpong_seconds=pingpong_seconds,
    )
