"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Deck, machine, and phase-structure summary.
``calibrate``
    Build and print per-cell cost curves (contrived-grid method).
``validate``
    Measure one configuration on the simulated machine and compare all
    model variants.
``sweep``
    Figure-5-style strong-scaling sweep with all general-model variants.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.machine import es45_like_cluster
from repro.machine.costdb import PHASE_SYNC_POINTS, table4_census
from repro.mesh import DECK_SIZES, MATERIAL_NAMES, build_deck, build_face_table, material_fractions
from repro.partition import cached_partition
from repro.perfmodel import (
    GeneralModel,
    MeshSpecificModel,
    TransitionModel,
    calibrate_contrived_grid,
    default_sample_sides,
)


def _parse_deck(text: str):
    if "x" in text and text not in DECK_SIZES:
        nx, ny = text.split("x")
        return build_deck((int(nx), int(ny)))
    return build_deck(text)


def _make_cluster(args) -> "object":
    cluster = es45_like_cluster(speed=args.speed)
    if getattr(args, "smp", False):
        cluster = cluster.with_smp()
    return cluster


def cmd_info(args) -> int:
    """Print deck, machine, and iteration-structure facts."""
    deck = _parse_deck(args.deck)
    table = TextTable(f"deck '{deck.name}'", ["property", "value"])
    table.add_row("cells", deck.num_cells)
    table.add_row("grid", f"{deck.mesh.nx} x {deck.mesh.ny}")
    table.add_row("detonator", str(deck.detonator_xy))
    for name, frac in zip(MATERIAL_NAMES, material_fractions(deck)):
        table.add_row(name, f"{frac * 100:.1f}%")
    print(table.render())

    census = table4_census()
    coll = TextTable("collectives per iteration (Table 4)", ["op", "count", "bytes"])
    for op, sizes in census.items():
        for size, count in sorted(sizes.items()):
            coll.add_row(op, count, size)
    print()
    print(coll.render())
    print(f"\nphases: 15, synchronisation points: {sum(PHASE_SYNC_POINTS)}")
    return 0


def cmd_calibrate(args) -> int:
    """Calibrate and print the per-cell cost curves."""
    cluster = _make_cluster(args)
    sides = default_sample_sides(args.max_side)
    table = calibrate_contrived_grid(cluster, sides=sides)
    out = TextTable(
        f"per-cell cost [us] for phase {args.phase} (contrived-grid method)",
        ["cells/PE"] + list(MATERIAL_NAMES),
    )
    curve = table.curves[args.phase - 1][0]
    for i, n in enumerate(curve.cells):
        out.add_row(
            int(n),
            *[table.curves[args.phase - 1][m].per_cell[i] * 1e6 for m in range(4)],
        )
    print(out.render())
    return 0


def cmd_validate(args) -> int:
    """Measure one configuration and compare every model variant."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    part = cached_partition(deck, args.ranks, seed=args.seed, faces=faces)
    census = build_workload_census(deck, part, faces)
    measured = measure_iteration_time(
        deck, part, cluster=cluster, faces=faces, census=census
    ).seconds

    out = TextTable(
        f"{deck.name} deck, {args.ranks} PEs on {cluster.name}",
        ["model", "predicted (ms)", "error"],
    )
    out.add_row("measured", measured * 1e3, "-")
    predictions = {
        "mesh-specific": MeshSpecificModel(table=table, network=cluster.network).predict(census).total,
        "general homogeneous": GeneralModel(
            table=table, network=cluster.network, mode="homogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "general heterogeneous": GeneralModel(
            table=table, network=cluster.network, mode="heterogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "transition": TransitionModel.for_deck(deck, table, cluster.network).predict(
            deck.num_cells, args.ranks
        ).total,
    }
    for name, pred in predictions.items():
        out.add_row(name, pred * 1e3, f"{(measured - pred) / measured * 100:+.1f}%")
    print(out.render())
    return 0


def cmd_sweep(args) -> int:
    """Strong-scaling sweep with measured + all general variants."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    homo = GeneralModel(table=table, network=cluster.network, mode="homogeneous")
    het = GeneralModel(table=table, network=cluster.network, mode="heterogeneous")
    trans = TransitionModel.for_deck(deck, table, cluster.network)

    out = TextTable(
        f"strong scaling, {deck.name} deck on {cluster.name}",
        ["PEs", "measured (ms)", "homo (ms)", "hetero (ms)", "transition (ms)"],
    )
    p = 1
    while p <= args.max_ranks:
        part = cached_partition(deck, p, seed=args.seed, faces=faces)
        census = build_workload_census(deck, part, faces)
        measured = measure_iteration_time(
            deck, part, cluster=cluster, faces=faces, census=census
        ).seconds
        out.add_row(
            p,
            measured * 1e3,
            homo.predict(deck.num_cells, p).total * 1e3,
            het.predict(deck.num_cells, p).total * 1e3,
            trans.predict(deck.num_cells, p).total * 1e3,
        )
        p *= 2
    print(out.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Krak performance-model reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--deck", default="small", help="small|medium|large or NXxNY")
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument("--smp", action="store_true", help="enable 4-way SMP hierarchy")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--max-side", type=int, default=256, help="calibration range")

    p_info = sub.add_parser("info", help="deck and machine summary")
    p_info.add_argument("--deck", default="small")
    p_info.set_defaults(func=cmd_info)

    p_cal = sub.add_parser("calibrate", help="print cost curves")
    common(p_cal)
    p_cal.add_argument("--phase", type=int, default=2, choices=range(1, 16))
    p_cal.set_defaults(func=cmd_calibrate)

    p_val = sub.add_parser("validate", help="measure + predict one config")
    common(p_val)
    p_val.add_argument("--ranks", type=int, default=16)
    p_val.set_defaults(func=cmd_validate)

    p_sweep = sub.add_parser("sweep", help="strong-scaling sweep")
    common(p_sweep)
    p_sweep.add_argument("--max-ranks", type=int, default=64)
    p_sweep.set_defaults(func=cmd_sweep)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
