"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Deck, machine, and phase-structure summary.
``calibrate``
    Build and print per-cell cost curves (contrived-grid method).
``validate``
    Measure one configuration on the simulated machine and compare all
    model variants.
``scale``
    Extreme-scaling predictions on the sparse O(P log P) path: sweep a
    ``--ranks`` axis (up to 10^6) over synthetic weak-scaled meshes and
    price each machine analytically — no (P, P) arrays, optionally with
    a tracemalloc peak-memory column (``--memory``).
``place``
    Topology-aware rank placement on the SMP machine:

    ``place compare``
        Measure one configuration under each placement strategy (block,
        round-robin, random, comm-aware) with inter-node traffic shares.
    ``place optimize``
        Run the communication-aware optimizer and report its margin over
        block placement (inter-node bytes, max per-rank p2p cost, measured
        iteration time).
    ``place scale``
        Cost placements on a synthetic weak-scaled mesh through the CSR
        sparse path — works at 10^5–10^6 ranks where the dense (P, P)
        structures cannot be built.
``verify``
    Differential verification against the reference oracle:

    ``verify fuzz``
        Sweep seeded random scenarios (``--seeds N``) through the
        optimized-vs-oracle differential and the metamorphic property
        checks; failures are shrunk to minimal counterexamples and saved
        as replayable scenario JSON files.
    ``verify diff``
        Replay one saved scenario file through the full verification.
``bench``
    The machine-readable benchmark subsystem:

    ``bench list``
        Show every registered benchmark (name, group, description).
    ``bench run``
        Time a suite (``--suite smoke|full``) and emit a schema-valid
        ``BENCH_<suite>.json`` with environment fingerprint, robust
        wall-time stats, and simulated-time invariants.
    ``bench compare``
        Diff two report files against per-bench regression thresholds;
        exits non-zero on a regression or invariant drift.
``sweep``
    Figure-5-style strong-scaling sweep with all general-model variants
    (legacy single-deck table), plus the orchestrated grid subcommands:

    ``sweep run``
        Evaluate a declarative grid (decks × rank counts × partition
        methods × seeds), optionally in parallel (``--jobs N``) and
        resumably — finished points are persisted to the on-disk result
        store and replayed on re-runs instead of being recomputed.
    ``sweep status``
        Report how much of a grid is already in the store.
    ``sweep clear``
        Drop stored sweep results (``--partitions`` also drops cached
        partitions).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    ClusterSpec,
    DynamicSpec,
    SweepSpec,
    TextTable,
    powers_of_two,
    run_sweep,
    sweep_status,
    sweep_store,
)
from repro.hydro import build_workload_census, measure_iteration_time
from repro.machine import es45_like_cluster
from repro.machine.costdb import PHASE_SYNC_POINTS, table4_census
from repro.mesh import DECK_SIZES, MATERIAL_NAMES, build_deck, build_face_table, material_fractions
from repro.partition import cached_partition
from repro.partition.cache import cache_dir as partition_cache_dir
from repro.perfmodel import (
    GeneralModel,
    MeshSpecificModel,
    TransitionModel,
    calibrate_contrived_grid,
    default_sample_sides,
)


def _parse_deck(text: str):
    if "x" in text and text not in DECK_SIZES:
        nx, ny = text.split("x")
        return build_deck((int(nx), int(ny)))
    return build_deck(text)


def _make_cluster(args) -> "object":
    cluster = es45_like_cluster(speed=args.speed)
    if getattr(args, "smp", False):
        cluster = cluster.with_smp()
    return cluster


def cmd_info(args) -> int:
    """Print deck, machine, and iteration-structure facts."""
    deck = _parse_deck(args.deck)
    table = TextTable(f"deck '{deck.name}'", ["property", "value"])
    table.add_row("cells", deck.num_cells)
    table.add_row("grid", f"{deck.mesh.nx} x {deck.mesh.ny}")
    table.add_row("detonator", str(deck.detonator_xy))
    for name, frac in zip(MATERIAL_NAMES, material_fractions(deck)):
        table.add_row(name, f"{frac * 100:.1f}%")
    print(table.render())

    census = table4_census()
    coll = TextTable("collectives per iteration (Table 4)", ["op", "count", "bytes"])
    for op, sizes in census.items():
        for size, count in sorted(sizes.items()):
            coll.add_row(op, count, size)
    print()
    print(coll.render())
    print(f"\nphases: 15, synchronisation points: {sum(PHASE_SYNC_POINTS)}")
    return 0


def cmd_calibrate(args) -> int:
    """Calibrate and print the per-cell cost curves."""
    cluster = _make_cluster(args)
    sides = default_sample_sides(args.max_side)
    table = calibrate_contrived_grid(cluster, sides=sides)
    out = TextTable(
        f"per-cell cost [us] for phase {args.phase} (contrived-grid method)",
        ["cells/PE"] + list(MATERIAL_NAMES),
    )
    curve = table.curves[args.phase - 1][0]
    for i, n in enumerate(curve.cells):
        out.add_row(
            int(n),
            *[table.curves[args.phase - 1][m].per_cell[i] * 1e6 for m in range(4)],
        )
    print(out.render())
    return 0


def cmd_validate(args) -> int:
    """Measure one configuration and compare every model variant."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    part = cached_partition(deck, args.ranks, seed=args.seed, faces=faces)
    census = build_workload_census(deck, part, faces)
    measured = measure_iteration_time(
        deck, part, cluster=cluster, faces=faces, census=census
    ).seconds

    out = TextTable(
        f"{deck.name} deck, {args.ranks} PEs on {cluster.name}",
        ["model", "predicted (ms)", "error"],
    )
    out.add_row("measured", measured * 1e3, "-")
    predictions = {
        "mesh-specific": MeshSpecificModel(table=table, network=cluster.network).predict(census).total,
        "general homogeneous": GeneralModel(
            table=table, network=cluster.network, mode="homogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "general heterogeneous": GeneralModel(
            table=table, network=cluster.network, mode="heterogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "transition": TransitionModel.for_deck(deck, table, cluster.network).predict(
            deck.num_cells, args.ranks
        ).total,
    }
    for name, pred in predictions.items():
        out.add_row(name, pred * 1e3, f"{(measured - pred) / measured * 100:+.1f}%")
    print(out.render())
    return 0


def cmd_scale(args) -> int:
    """Price extreme-scale machines through the sparse O(P log P) path."""
    import time

    from repro.perfmodel import SparseMeshModel, weak_scaled_census

    cluster = _make_cluster(args)
    table = calibrate_contrived_grid(
        cluster, sides=default_sample_sides(args.max_side)
    )
    model = SparseMeshModel(
        table=table, network=cluster.network, hierarchy=cluster.hierarchy
    )

    columns = [
        "ranks", "links", "compute (ms)", "boundary (ms)", "ghost (ms)",
        "collectives (ms)", "total (ms)", "wall (s)",
    ]
    if args.memory:
        columns.append("peak MB")
    out = TextTable(
        f"sparse weak-scaled prediction on {cluster.name} "
        f"({args.cells_per_rank:g} cells/rank)",
        columns,
    )
    for ranks in _csv_ints(args.ranks):
        if args.memory:
            import tracemalloc

            tracemalloc.start()
        begin = time.perf_counter()
        census = weak_scaled_census(ranks, cells_per_rank=args.cells_per_rank)
        predicted = model.predict(census)
        wall = time.perf_counter() - begin
        row = [
            ranks,
            census.num_boundary_links + census.num_ghost_links,
            predicted.computation * 1e3,
            predicted.boundary_exchange * 1e3,
            predicted.ghost_updates * 1e3,
            predicted.collectives * 1e3,
            predicted.total * 1e3,
            f"{wall:.2f}",
        ]
        if args.memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            row.append(f"{peak / 1e6:.1f}")
        out.add_row(*row)
    print(out.render())
    return 0


def cmd_sweep(args) -> int:
    """Strong-scaling sweep with measured + all general variants."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    homo = GeneralModel(table=table, network=cluster.network, mode="homogeneous")
    het = GeneralModel(table=table, network=cluster.network, mode="heterogeneous")
    trans = TransitionModel.for_deck(deck, table, cluster.network)

    out = TextTable(
        f"strong scaling, {deck.name} deck on {cluster.name}",
        ["PEs", "measured (ms)", "homo (ms)", "hetero (ms)", "transition (ms)"],
    )
    p = 1
    while p <= args.max_ranks:
        part = cached_partition(deck, p, seed=args.seed, faces=faces)
        census = build_workload_census(deck, part, faces)
        measured = measure_iteration_time(
            deck, part, cluster=cluster, faces=faces, census=census
        ).seconds
        out.add_row(
            p,
            measured * 1e3,
            homo.predict(deck.num_cells, p).total * 1e3,
            het.predict(deck.num_cells, p).total * 1e3,
            trans.predict(deck.num_cells, p).total * 1e3,
        )
        p *= 2
    print(out.render())
    return 0


def _csv_strings(text: str) -> tuple:
    return tuple(s.strip() for s in text.split(",") if s.strip())


def _csv_ints(text: str) -> tuple:
    return tuple(int(s) for s in _csv_strings(text))


def _deck_label(deck) -> str:
    """Grid label: named decks by name, custom decks by their dimensions."""
    if deck.name in DECK_SIZES:
        return deck.name
    return f"{deck.mesh.nx}x{deck.mesh.ny}"


def _dynamics_from_args(args) -> tuple:
    """Workload-axis entries: ``static`` → None, anything else a policy spec
    (``never``/``every:N``/``imbalance:X``) shared across the other knobs."""
    out = []
    for token in _csv_strings(args.dynamic):
        if token == "static":
            out.append(None)
        else:
            out.append(
                DynamicSpec(
                    policy=token,
                    burn_multiplier=args.burn_mult,
                    iterations=args.dyn_iterations,
                )
            )
    return tuple(out)


def _dynamic_label(task) -> str:
    """Workload tag of a task for progress lines and table titles."""
    return "static" if task.dynamic is None else task.dynamic.label


def _placements_from_args(args) -> tuple:
    """Placement-axis entries: ``default`` → None (implicit block map),
    anything else a strategy name for :func:`repro.placement.make_placement`."""
    return tuple(
        None if token in ("default", "none") else token
        for token in _csv_strings(args.placements)
    )


def _placement_label(task) -> str:
    """Placement tag of a task for progress lines and table titles."""
    return "default" if task.placement is None else task.placement


def _spec_from_args(args) -> SweepSpec:
    """Build the declarative grid shared by ``sweep run`` and ``sweep status``."""
    ranks = _csv_ints(args.ranks) if args.ranks else powers_of_two(args.max_ranks)
    placements = _placements_from_args(args)
    if any(p is not None for p in placements) and not args.smp:
        # Fail before any grid point is evaluated, not mid-sweep.
        raise SystemExit(
            "error: --placements (other than 'default') requires --smp"
        )
    return SweepSpec(
        decks=_csv_strings(args.decks),
        rank_counts=ranks,
        clusters=(ClusterSpec(speed=args.speed, smp=args.smp),),
        partition_methods=_csv_strings(args.methods),
        models=_csv_strings(args.models),
        seeds=_csv_ints(args.seeds),
        dynamics=_dynamics_from_args(args),
        placements=placements,
        max_side=args.max_side,
    )


def cmd_sweep_run(args) -> int:
    """Evaluate a sweep grid — parallel with ``--jobs``, resumable via the
    result store."""
    spec = _spec_from_args(args)
    store = None if args.no_cache else sweep_store()

    def progress(done, total, task, point, cached):
        source = "store" if cached else f"{point.measured * 1e3:.2f} ms"
        print(
            f"[{done}/{total}] {_deck_label(task.deck)} p={task.num_ranks}"
            f" {task.partition_method} seed={task.seed}"
            f" {_dynamic_label(task)} {_placement_label(task)}: {source}",
            flush=True,
        )

    outcomes = run_sweep(
        spec,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else progress,
    )

    groups: dict = {}
    for outcome in outcomes:
        task = outcome.task
        key = (
            _deck_label(task.deck),
            task.cluster.name,
            task.partition_method,
            task.seed,
            _dynamic_label(task),
            _placement_label(task),
        )
        groups.setdefault(key, []).append(outcome.point)
    for (
        deck_label, cluster_name, method, seed, dyn_label, place_label
    ), points in groups.items():
        out = TextTable(
            f"{deck_label} deck on {cluster_name} "
            f"({method}, seed {seed}, {dyn_label}, place {place_label})",
            ["PEs", "measured (ms)"]
            + [f"{m} (ms)" for m in spec.models]
            + [f"{m} err" for m in spec.models],
        )
        for point in points:
            out.add_row(
                point.num_ranks,
                point.measured * 1e3,
                *[point.predicted[m] * 1e3 for m in spec.models],
                *[f"{point.error(m) * 100:+.1f}%" for m in spec.models],
            )
        print(out.render())
        print()
    computed = sum(1 for o in outcomes if not o.cached)
    cached = len(outcomes) - computed
    print(f"{len(outcomes)} points: {computed} simulated, {cached} from store")
    return 0


def cmd_sweep_status(args) -> int:
    """Report grid completion against the result store."""
    spec = _spec_from_args(args)
    status = sweep_status(spec, sweep_store())
    out = TextTable("sweep status", ["points", "count"])
    out.add_row("total", status.total)
    out.add_row("completed", status.completed)
    out.add_row("pending", status.pending)
    print(out.render())
    return 0


def cmd_sweep_clear(args) -> int:
    """Drop stored sweep artifacts (and optionally cached partitions)."""
    removed = sweep_store().clear()
    print(f"removed {removed} stored sweep points")
    if args.partitions:
        count = 0
        for path in sorted(partition_cache_dir().glob("*.npz")):
            path.unlink()
            count += 1
        print(f"removed {count} cached partitions")
    return 0


def _place_setup(args):
    """Shared deck/partition/census/SMP-cluster construction for ``place``."""
    deck = _parse_deck(args.deck)
    faces = build_face_table(deck.mesh)
    part = cached_partition(
        deck, args.ranks, method=args.method, seed=args.seed, faces=faces
    )
    census = build_workload_census(deck, part, faces)
    cluster = es45_like_cluster(speed=args.speed).with_smp(
        ranks_per_node=args.ranks_per_node,
        intra_send_overhead=args.intra_send_us * 1e-6,
        intra_recv_overhead=args.intra_recv_us * 1e-6,
    )
    return deck, faces, part, census, cluster


def cmd_place_compare(args) -> int:
    """Measure one configuration under each placement strategy."""
    from repro.placement import (
        inter_node_bytes,
        make_placement,
        rank_comm_bytes,
        total_pair_bytes,
    )

    deck, faces, part, census, cluster = _place_setup(args)
    graph = rank_comm_bytes(census)
    total = total_pair_bytes(graph)

    block = make_placement("block", args.ranks, args.ranks_per_node)
    t_block = measure_iteration_time(
        deck, part, cluster=cluster.with_placement(block), faces=faces,
        census=census,
    ).seconds

    out = TextTable(
        f"rank placement, {deck.name} deck, {args.ranks} ranks on {cluster.name}",
        ["strategy", "nodes", "inter-node KB", "share", "measured (ms)", "vs block"],
    )
    for strategy in _csv_strings(args.strategies):
        placement = make_placement(
            strategy,
            num_ranks=args.ranks,
            ranks_per_node=args.ranks_per_node,
            census=census,
            cluster=cluster,
            seed=args.seed,
        )
        seconds = (
            t_block
            if strategy == "block"
            else measure_iteration_time(
                deck, part, cluster=cluster.with_placement(placement),
                faces=faces, census=census,
            ).seconds
        )
        inter = inter_node_bytes(placement, graph)
        out.add_row(
            placement.name,
            placement.num_nodes,
            inter / 1e3,
            f"{inter / total * 100:.0f}%" if total else "-",
            seconds * 1e3,
            f"{(t_block - seconds) / t_block * 100:+.2f}%",
        )
    print(out.render())
    return 0


def cmd_place_optimize(args) -> int:
    """Run the communication-aware optimizer and report its margin."""
    from repro.placement import (
        block_placement,
        inter_node_bytes,
        optimize_placement,
        placement_comm_cost,
        rank_comm_bytes,
        rank_pair_times,
    )

    deck, faces, part, census, cluster = _place_setup(args)
    graph = rank_comm_bytes(census)
    block = block_placement(args.ranks, args.ranks_per_node)
    optimized = optimize_placement(census, cluster)
    t_intra, t_inter = rank_pair_times(census, cluster)

    t_block = measure_iteration_time(
        deck, part, cluster=cluster.with_placement(block), faces=faces,
        census=census,
    ).seconds
    t_opt = measure_iteration_time(
        deck, part, cluster=cluster.with_placement(optimized), faces=faces,
        census=census,
    ).seconds

    out = TextTable(
        f"comm-aware optimization, {deck.name} deck, {args.ranks} ranks "
        f"on {cluster.name}",
        ["quantity", "block", "comm-aware", "change"],
    )
    rows = [
        ("inter-node KB", inter_node_bytes(block, graph) / 1e3,
         inter_node_bytes(optimized, graph) / 1e3),
        ("max per-rank p2p (ms)",
         placement_comm_cost(block.node_of_rank, t_intra, t_inter)[0] * 1e3,
         placement_comm_cost(optimized.node_of_rank, t_intra, t_inter)[0] * 1e3),
        ("measured iteration (ms)", t_block * 1e3, t_opt * 1e3),
    ]
    for label, before, after in rows:
        change = (before - after) / before * 100 if before else 0.0
        out.add_row(label, before, after, f"{change:+.2f}%")
    print(out.render())
    if args.show_map:
        print()
        for node in range(optimized.num_nodes):
            ranks = ", ".join(str(r) for r in optimized.ranks_on_node(node))
            print(f"node {node:3d}: ranks {ranks}")
    return 0


def cmd_place_scale(args) -> int:
    """Cost placements on a synthetic weak-scaled mesh at extreme scale."""
    import time

    from repro.perfmodel import weak_scaled_census
    from repro.placement import (
        block_placement,
        comm_aware_placement_sparse,
        inter_node_bytes_sparse,
        round_robin_placement,
        sparse_comm_bytes,
        total_pair_bytes_sparse,
    )

    begin = time.perf_counter()
    census = weak_scaled_census(args.ranks, cells_per_rank=args.cells_per_rank)
    graph = sparse_comm_bytes(census)
    build = time.perf_counter() - begin
    total = total_pair_bytes_sparse(graph)

    strategies = ["block", "round-robin"]
    if args.optimize:
        strategies.append("comm-aware")
    out = TextTable(
        f"sparse placement costing, {args.ranks} ranks, "
        f"{graph.num_entries // 2} comm edges (built in {build:.2f}s)",
        ["strategy", "nodes", "inter-node MB", "share", "wall (s)"],
    )
    for strategy in strategies:
        begin = time.perf_counter()
        if strategy == "block":
            placement = block_placement(args.ranks, args.ranks_per_node)
        elif strategy == "round-robin":
            placement = round_robin_placement(args.ranks, args.ranks_per_node)
        else:
            placement = comm_aware_placement_sparse(graph, args.ranks_per_node)
        inter = inter_node_bytes_sparse(placement, graph)
        wall = time.perf_counter() - begin
        out.add_row(
            placement.name,
            placement.num_nodes,
            inter / 1e6,
            f"{inter / total * 100:.0f}%" if total else "-",
            f"{wall:.2f}",
        )
    print(out.render())
    return 0


def cmd_verify_fuzz(args) -> int:
    """Fuzz the optimized stack against the reference oracle."""
    from pathlib import Path

    from repro.verify import fuzz
    from repro.verify.scenarios import save_scenario

    def progress(done, total, outcome):
        status = "ok" if outcome.ok else "FAIL"
        print(
            f"[{done}/{total}] {outcome.scenario.label()}: {status} "
            f"(max rel err {outcome.diff.max_rel_err:.1e})",
            flush=True,
        )

    result = fuzz(
        args.seeds,
        base_seed=args.base_seed,
        rtol=args.rtol,
        properties=not args.no_properties,
        progress=None if args.quiet else progress,
    )
    print(
        f"{result.num_seeds} scenarios (seeds {result.base_seed}.."
        f"{result.base_seed + result.num_seeds - 1}): "
        f"{result.num_seeds - len(result.failures)} ok, "
        f"{len(result.failures)} failed; max rel err {result.max_rel_err:.3e}"
    )
    if not result.failures:
        return 0
    outdir = Path(args.save_failures)
    outdir.mkdir(parents=True, exist_ok=True)
    for failure in result.failures:
        path = save_scenario(failure.shrunk, outdir / f"seed{failure.seed}.json")
        print(f"\nseed {failure.seed} (shrunk to {failure.shrunk.label()}):")
        if failure.outcome is not None:
            print(failure.outcome.describe())
        if failure.error:
            print("verification crashed:")
            print(failure.error.rstrip())
        print(
            f"saved minimal repro to {path} — replay with: "
            f"python -m repro verify diff {path}"
        )
        # The shrunk scenario is NOT derivable from the seed (only the
        # original is), so echo the full JSON: a CI log is often all that
        # survives the runner.
        print(path.read_text().rstrip())
    return 1


def cmd_verify_diff(args) -> int:
    """Replay one saved scenario through the full verification."""
    from repro.verify import verify_scenario
    from repro.verify.scenarios import load_scenario

    scenario = load_scenario(args.scenario)
    outcome = verify_scenario(
        scenario, rtol=args.rtol, properties=not args.no_properties
    )
    print(f"scenario: {scenario.label()}")
    print(f"makespan: {outcome.diff.makespan * 1e3:.4f} ms (optimized engine)")
    print(outcome.describe())
    return 0 if outcome.ok else 1


def cmd_bench_list(args) -> int:
    """Print the registered benchmarks."""
    from repro.bench import all_benchmarks

    out = TextTable("registered benchmarks", ["name", "group", "description"])
    for name, bench in all_benchmarks().items():
        if args.group and bench.group != args.group:
            continue
        out.add_row(name, bench.group, bench.description)
    print(out.render())
    return 0


def cmd_bench_run(args) -> int:
    """Run a benchmark suite and emit the JSON report."""
    from repro.bench import build_report, load_report, run_suite, write_report

    names = list(_csv_strings(args.names)) if args.names else None

    def progress(done, total, timing):
        stats = timing.stats
        print(
            f"[{done}/{total}] {timing.bench.name}: median "
            f"{stats['median'] * 1e3:.2f} ms over {len(timing.wall_s)} repeats",
            flush=True,
        )

    timings = run_suite(
        args.suite,
        names=names,
        repeats=args.repeats,
        progress=None if args.quiet else progress,
    )
    output = args.output or f"BENCH_{args.suite}.json"
    # Overwriting an existing report must not destroy its curated `extra`
    # block (e.g. the committed trajectory's before/after record) — even
    # when the old file no longer validates against the current schema.
    extra = None
    try:
        extra = load_report(output).get("extra")
    except OSError:
        pass
    except ValueError:
        try:
            import json as _json
            from pathlib import Path as _Path

            extra = _json.loads(_Path(output).read_text()).get("extra")
            print(f"note: {output} failed schema validation; salvaged its 'extra' block")
        except (OSError, ValueError):
            print(f"warning: {output} is unreadable; any 'extra' block will be lost")
    path = write_report(build_report(args.suite, timings, extra=extra), output)
    if extra:
        print(f"preserved the existing report's 'extra' block ({len(extra)} keys)")
    print(f"wrote {path} ({len(timings)} benchmarks)")
    return 0


def cmd_bench_compare(args) -> int:
    """Diff two reports; non-zero exit on regression or invariant drift."""
    from repro.bench import compare_reports, load_report

    old = load_report(args.baseline)
    new = load_report(args.candidate)
    result = compare_reports(
        old, new, threshold=args.threshold, stat=args.stat,
        assume_same_env=args.assume_same_env,
    )
    if not result.same_env:
        print(
            "note: reports come from different environments — wall-time "
            "exceedances are warnings; invariant drift still fails "
            "(--assume-same-env to gate wall time anyway)"
        )
    out = TextTable(
        f"bench compare ({args.stat}): {args.baseline} -> {args.candidate}",
        ["benchmark", "old (ms)", "new (ms)", "status", "detail"],
    )
    for e in result.entries:
        out.add_row(
            e.name,
            "-" if e.old_s is None else f"{e.old_s * 1e3:.2f}",
            "-" if e.new_s is None else f"{e.new_s * 1e3:.2f}",
            e.status.upper(),
            e.detail,
        )
    print(out.render())
    print(
        f"{result.num_compared}/{len(result.entries)} compared: "
        f"{len(result.failures)} fail, {len(result.warnings)} warn"
    )
    if not result.failures and result.num_compared == 0:
        print("error: no benchmark overlaps between the two reports")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Krak performance-model reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--deck", default="small", help="small|medium|large or NXxNY")
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument("--smp", action="store_true", help="enable 4-way SMP hierarchy")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--max-side", type=int, default=256, help="calibration range")

    p_info = sub.add_parser("info", help="deck and machine summary")
    p_info.add_argument("--deck", default="small")
    p_info.set_defaults(func=cmd_info)

    p_cal = sub.add_parser("calibrate", help="print cost curves")
    common(p_cal)
    p_cal.add_argument("--phase", type=int, default=2, choices=range(1, 16))
    p_cal.set_defaults(func=cmd_calibrate)

    p_val = sub.add_parser("validate", help="measure + predict one config")
    common(p_val)
    p_val.add_argument("--ranks", type=int, default=16)
    p_val.set_defaults(func=cmd_validate)

    p_scale = sub.add_parser(
        "scale",
        help="extreme-scaling predictions on the sparse O(P log P) path",
        description=(
            "Sweep a --ranks axis over synthetic weak-scaled meshes and "
            "price each machine with the sparse mesh-specific model: "
            "O(edges) memory and time, so a 10^6-rank prediction finishes "
            "in seconds with no (P, P) array."
        ),
    )
    common(p_scale)
    p_scale.add_argument(
        "--ranks", default="1000,10000,100000,1000000",
        help="comma list of rank counts to price",
    )
    p_scale.add_argument(
        "--cells-per-rank", type=float, default=8192.0,
        help="weak-scaling workload per rank",
    )
    p_scale.add_argument(
        "--memory", action="store_true",
        help="report tracemalloc peak memory per point (slower)",
    )
    p_scale.set_defaults(func=cmd_scale)

    p_sweep = sub.add_parser(
        "sweep",
        help="strong-scaling sweep (legacy table) or grid subcommands run|status|clear",
        description=(
            "Without a subcommand: the legacy single-deck strong-scaling "
            "table.  Subcommands orchestrate declarative grids: `run` "
            "evaluates (in parallel with --jobs, resumably via the on-disk "
            "result store), `status` reports completion, `clear` drops "
            "stored results."
        ),
    )
    common(p_sweep)
    p_sweep.add_argument("--max-ranks", type=int, default=64)
    p_sweep.set_defaults(func=cmd_sweep)
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command")

    def grid(p):
        p.add_argument(
            "--decks", default="small", help="comma list: small|medium|large or NXxNY"
        )
        p.add_argument(
            "--ranks", default="", help="comma list of PE counts (overrides --max-ranks)"
        )
        p.add_argument(
            "--max-ranks", type=int, default=64, help="powers of two up to this"
        )
        p.add_argument(
            "--methods", default="multilevel",
            help="comma list: multilevel|rcb|block|structured-block",
        )
        p.add_argument(
            "--models", default="homogeneous,heterogeneous",
            help="comma list: mesh-specific|homogeneous|heterogeneous",
        )
        p.add_argument("--seeds", default="1", help="comma list of partition seeds")
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument("--smp", action="store_true", help="enable 4-way SMP hierarchy")
        p.add_argument("--max-side", type=int, default=256, help="calibration range")
        p.add_argument(
            "--dynamic", default="static",
            help=(
                "comma list of workloads: static (no time evolution) or a "
                "repartition policy never|every:N|imbalance:X"
            ),
        )
        p.add_argument(
            "--burn-mult", type=float, default=4.0,
            help="cost multiplier for actively-burning cells (dynamic runs)",
        )
        p.add_argument(
            "--dyn-iterations", type=int, default=12,
            help="iterations per dynamic run (static runs keep the default 3)",
        )
        p.add_argument(
            "--placements", default="default",
            help=(
                "comma list of rank placements (requires --smp): default "
                "(implicit block map) or block|round-robin|random[:seed]|"
                "comm-aware"
            ),
        )

    p_run = sweep_sub.add_parser(
        "run", help="evaluate a sweep grid (parallel + resumable)"
    )
    grid(p_run)
    p_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    p_run.add_argument(
        "--no-cache", action="store_true", help="skip the result store entirely"
    )
    p_run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    p_run.set_defaults(func=cmd_sweep_run)

    p_status = sweep_sub.add_parser(
        "status", help="report how much of a grid is already stored"
    )
    grid(p_status)
    p_status.set_defaults(func=cmd_sweep_status)

    p_clear = sweep_sub.add_parser("clear", help="drop stored sweep results")
    p_clear.add_argument(
        "--partitions", action="store_true", help="also drop cached partitions"
    )
    p_clear.set_defaults(func=cmd_sweep_clear)

    p_place = sub.add_parser(
        "place",
        help="topology-aware rank placement: compare|optimize",
        description=(
            "Rank→node placement studies on the SMP machine: `compare` "
            "measures one configuration under each placement strategy; "
            "`optimize` runs the communication-aware optimizer and reports "
            "its margin over block placement.  Both default to a "
            "shared-memory transport with cheaper on-node host overheads "
            "(tune with --intra-send-us/--intra-recv-us)."
        ),
    )
    place_sub = p_place.add_subparsers(dest="place_command", required=True)

    def place_common(p):
        p.add_argument("--deck", default="small", help="small|medium|large or NXxNY")
        p.add_argument("--ranks", type=int, default=16)
        p.add_argument(
            "--ranks-per-node", type=int, default=4, help="SMP node capacity"
        )
        p.add_argument(
            "--method", default="multilevel",
            help="partitioner: multilevel|rcb|block|structured-block",
        )
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument(
            "--intra-send-us", type=float, default=0.5,
            help="on-node send overhead, microseconds (fabric: 1.5)",
        )
        p.add_argument(
            "--intra-recv-us", type=float, default=0.7,
            help="on-node recv overhead, microseconds (fabric: 2.0)",
        )

    p_pc = place_sub.add_parser(
        "compare", help="measure every placement strategy on one configuration"
    )
    place_common(p_pc)
    p_pc.add_argument(
        "--strategies", default="block,round-robin,random:1,comm-aware",
        help="comma list: block|round-robin|random[:seed]|comm-aware",
    )
    p_pc.set_defaults(func=cmd_place_compare)

    p_po = place_sub.add_parser(
        "optimize", help="run the comm-aware optimizer, report margin vs block"
    )
    place_common(p_po)
    p_po.add_argument(
        "--show-map", action="store_true", help="print the optimized rank→node map"
    )
    p_po.set_defaults(func=cmd_place_optimize)

    p_ps = place_sub.add_parser(
        "scale",
        help="cost placements on a weak-scaled mesh via the sparse path",
        description=(
            "Build a synthetic weak-scaled mesh census, extract its CSR "
            "communication graph, and cost block / round-robin (and, with "
            "--optimize, the comm-aware optimizer) by sparse inter-node "
            "bytes — no (P, P) structures, so it works at 10^5-10^6 ranks."
        ),
    )
    p_ps.add_argument(
        "--ranks", type=int, default=100000, help="rank count to cost"
    )
    p_ps.add_argument(
        "--ranks-per-node", type=int, default=4, help="SMP node capacity"
    )
    p_ps.add_argument(
        "--cells-per-rank", type=float, default=8192.0,
        help="weak-scaling workload per rank",
    )
    p_ps.add_argument(
        "--optimize", action="store_true",
        help="also run the sparse comm-aware optimizer (moderate ranks)",
    )
    p_ps.set_defaults(func=cmd_place_scale)

    p_verify = sub.add_parser(
        "verify",
        help="differential verification vs the reference oracle: fuzz|diff",
        description=(
            "Verify the optimized simulator against the naive reference "
            "oracle (src/repro/verify/): `fuzz` sweeps seeded random "
            "scenarios through the phase-by-phase differential and the "
            "metamorphic property checks, shrinking any failure to a "
            "minimal replayable scenario file; `diff` replays one such "
            "file."
        ),
    )
    verify_sub = p_verify.add_subparsers(dest="verify_command", required=True)

    def verify_common(p):
        p.add_argument(
            "--rtol", type=float, default=1e-12,
            help="relative tolerance for optimized-vs-oracle agreement",
        )
        p.add_argument(
            "--no-properties", action="store_true",
            help="skip the metamorphic property checks (differential only)",
        )

    v_fuzz = verify_sub.add_parser(
        "fuzz", help="sweep seeded random scenarios through the differential"
    )
    v_fuzz.add_argument(
        "--seeds", type=int, default=25, help="number of scenarios to generate"
    )
    v_fuzz.add_argument(
        "--base-seed", type=int, default=0, help="first scenario seed"
    )
    v_fuzz.add_argument(
        "--save-failures", default="verify-failures",
        help="directory for shrunk failing-scenario JSON files",
    )
    v_fuzz.add_argument("--quiet", action="store_true", help="suppress progress lines")
    verify_common(v_fuzz)
    v_fuzz.set_defaults(func=cmd_verify_fuzz)

    v_diff = verify_sub.add_parser(
        "diff", help="replay one saved scenario file through the verification"
    )
    v_diff.add_argument("scenario", help="scenario JSON (from fuzz --save-failures)")
    verify_common(v_diff)
    v_diff.set_defaults(func=cmd_verify_diff)

    p_bench = sub.add_parser(
        "bench",
        help="machine-readable benchmarks: list|run|compare",
        description=(
            "Declarative benchmark registry over the table/figure workloads "
            "and hot-path micro-benchmarks.  `run` emits BENCH_<suite>.json; "
            "`compare` gates two reports against per-bench thresholds."
        ),
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_list = bench_sub.add_parser("list", help="show registered benchmarks")
    b_list.add_argument("--group", default="", help="restrict to one group")
    b_list.set_defaults(func=cmd_bench_list)

    b_run = bench_sub.add_parser("run", help="time a suite, emit JSON report")
    b_run.add_argument(
        "--suite", default="smoke", choices=["smoke", "full"],
        help="sized variant to run",
    )
    b_run.add_argument(
        "--names", default="", help="comma list of benchmark names (default: all)"
    )
    b_run.add_argument(
        "--repeats", type=int, default=None, help="override per-bench repeats"
    )
    b_run.add_argument(
        "--output", default="", help="report path (default BENCH_<suite>.json)"
    )
    b_run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    b_run.set_defaults(func=cmd_bench_run)

    b_cmp = bench_sub.add_parser(
        "compare", help="diff two reports against regression thresholds"
    )
    b_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    b_cmp.add_argument("candidate", help="candidate BENCH_*.json")
    b_cmp.add_argument(
        "--threshold", type=float, default=None,
        help="override every per-bench threshold (e.g. 0.30 = ±30%%)",
    )
    b_cmp.add_argument(
        "--stat", default="median", choices=["best", "median", "mean"],
        help="wall-time statistic to compare",
    )
    b_cmp.add_argument(
        "--assume-same-env", action="store_true",
        help=(
            "gate wall time even when the environment fingerprints differ "
            "(default: cross-environment slowdowns only warn; invariant "
            "drift always fails)"
        ),
    )
    b_cmp.set_defaults(func=cmd_bench_compare)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
