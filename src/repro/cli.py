"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Deck, machine, and phase-structure summary.
``calibrate``
    Build and print per-cell cost curves (contrived-grid method).
``validate``
    Measure one configuration on the simulated machine and compare all
    model variants.
``sweep``
    Figure-5-style strong-scaling sweep with all general-model variants
    (legacy single-deck table), plus the orchestrated grid subcommands:

    ``sweep run``
        Evaluate a declarative grid (decks × rank counts × partition
        methods × seeds), optionally in parallel (``--jobs N``) and
        resumably — finished points are persisted to the on-disk result
        store and replayed on re-runs instead of being recomputed.
    ``sweep status``
        Report how much of a grid is already in the store.
    ``sweep clear``
        Drop stored sweep results (``--partitions`` also drops cached
        partitions).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    ClusterSpec,
    DynamicSpec,
    SweepSpec,
    TextTable,
    powers_of_two,
    run_sweep,
    sweep_status,
    sweep_store,
)
from repro.hydro import build_workload_census, measure_iteration_time
from repro.machine import es45_like_cluster
from repro.machine.costdb import PHASE_SYNC_POINTS, table4_census
from repro.mesh import DECK_SIZES, MATERIAL_NAMES, build_deck, build_face_table, material_fractions
from repro.partition import cached_partition
from repro.partition.cache import cache_dir as partition_cache_dir
from repro.perfmodel import (
    GeneralModel,
    MeshSpecificModel,
    TransitionModel,
    calibrate_contrived_grid,
    default_sample_sides,
)


def _parse_deck(text: str):
    if "x" in text and text not in DECK_SIZES:
        nx, ny = text.split("x")
        return build_deck((int(nx), int(ny)))
    return build_deck(text)


def _make_cluster(args) -> "object":
    cluster = es45_like_cluster(speed=args.speed)
    if getattr(args, "smp", False):
        cluster = cluster.with_smp()
    return cluster


def cmd_info(args) -> int:
    """Print deck, machine, and iteration-structure facts."""
    deck = _parse_deck(args.deck)
    table = TextTable(f"deck '{deck.name}'", ["property", "value"])
    table.add_row("cells", deck.num_cells)
    table.add_row("grid", f"{deck.mesh.nx} x {deck.mesh.ny}")
    table.add_row("detonator", str(deck.detonator_xy))
    for name, frac in zip(MATERIAL_NAMES, material_fractions(deck)):
        table.add_row(name, f"{frac * 100:.1f}%")
    print(table.render())

    census = table4_census()
    coll = TextTable("collectives per iteration (Table 4)", ["op", "count", "bytes"])
    for op, sizes in census.items():
        for size, count in sorted(sizes.items()):
            coll.add_row(op, count, size)
    print()
    print(coll.render())
    print(f"\nphases: 15, synchronisation points: {sum(PHASE_SYNC_POINTS)}")
    return 0


def cmd_calibrate(args) -> int:
    """Calibrate and print the per-cell cost curves."""
    cluster = _make_cluster(args)
    sides = default_sample_sides(args.max_side)
    table = calibrate_contrived_grid(cluster, sides=sides)
    out = TextTable(
        f"per-cell cost [us] for phase {args.phase} (contrived-grid method)",
        ["cells/PE"] + list(MATERIAL_NAMES),
    )
    curve = table.curves[args.phase - 1][0]
    for i, n in enumerate(curve.cells):
        out.add_row(
            int(n),
            *[table.curves[args.phase - 1][m].per_cell[i] * 1e6 for m in range(4)],
        )
    print(out.render())
    return 0


def cmd_validate(args) -> int:
    """Measure one configuration and compare every model variant."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    part = cached_partition(deck, args.ranks, seed=args.seed, faces=faces)
    census = build_workload_census(deck, part, faces)
    measured = measure_iteration_time(
        deck, part, cluster=cluster, faces=faces, census=census
    ).seconds

    out = TextTable(
        f"{deck.name} deck, {args.ranks} PEs on {cluster.name}",
        ["model", "predicted (ms)", "error"],
    )
    out.add_row("measured", measured * 1e3, "-")
    predictions = {
        "mesh-specific": MeshSpecificModel(table=table, network=cluster.network).predict(census).total,
        "general homogeneous": GeneralModel(
            table=table, network=cluster.network, mode="homogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "general heterogeneous": GeneralModel(
            table=table, network=cluster.network, mode="heterogeneous"
        ).predict(deck.num_cells, args.ranks).total,
        "transition": TransitionModel.for_deck(deck, table, cluster.network).predict(
            deck.num_cells, args.ranks
        ).total,
    }
    for name, pred in predictions.items():
        out.add_row(name, pred * 1e3, f"{(measured - pred) / measured * 100:+.1f}%")
    print(out.render())
    return 0


def cmd_sweep(args) -> int:
    """Strong-scaling sweep with measured + all general variants."""
    deck = _parse_deck(args.deck)
    cluster = _make_cluster(args)
    faces = build_face_table(deck.mesh)
    table = calibrate_contrived_grid(cluster, sides=default_sample_sides(args.max_side))
    homo = GeneralModel(table=table, network=cluster.network, mode="homogeneous")
    het = GeneralModel(table=table, network=cluster.network, mode="heterogeneous")
    trans = TransitionModel.for_deck(deck, table, cluster.network)

    out = TextTable(
        f"strong scaling, {deck.name} deck on {cluster.name}",
        ["PEs", "measured (ms)", "homo (ms)", "hetero (ms)", "transition (ms)"],
    )
    p = 1
    while p <= args.max_ranks:
        part = cached_partition(deck, p, seed=args.seed, faces=faces)
        census = build_workload_census(deck, part, faces)
        measured = measure_iteration_time(
            deck, part, cluster=cluster, faces=faces, census=census
        ).seconds
        out.add_row(
            p,
            measured * 1e3,
            homo.predict(deck.num_cells, p).total * 1e3,
            het.predict(deck.num_cells, p).total * 1e3,
            trans.predict(deck.num_cells, p).total * 1e3,
        )
        p *= 2
    print(out.render())
    return 0


def _csv_strings(text: str) -> tuple:
    return tuple(s.strip() for s in text.split(",") if s.strip())


def _csv_ints(text: str) -> tuple:
    return tuple(int(s) for s in _csv_strings(text))


def _deck_label(deck) -> str:
    """Grid label: named decks by name, custom decks by their dimensions."""
    if deck.name in DECK_SIZES:
        return deck.name
    return f"{deck.mesh.nx}x{deck.mesh.ny}"


def _dynamics_from_args(args) -> tuple:
    """Workload-axis entries: ``static`` → None, anything else a policy spec
    (``never``/``every:N``/``imbalance:X``) shared across the other knobs."""
    out = []
    for token in _csv_strings(args.dynamic):
        if token == "static":
            out.append(None)
        else:
            out.append(
                DynamicSpec(
                    policy=token,
                    burn_multiplier=args.burn_mult,
                    iterations=args.dyn_iterations,
                )
            )
    return tuple(out)


def _dynamic_label(task) -> str:
    """Workload tag of a task for progress lines and table titles."""
    return "static" if task.dynamic is None else task.dynamic.label


def _spec_from_args(args) -> SweepSpec:
    """Build the declarative grid shared by ``sweep run`` and ``sweep status``."""
    ranks = _csv_ints(args.ranks) if args.ranks else powers_of_two(args.max_ranks)
    return SweepSpec(
        decks=_csv_strings(args.decks),
        rank_counts=ranks,
        clusters=(ClusterSpec(speed=args.speed, smp=args.smp),),
        partition_methods=_csv_strings(args.methods),
        models=_csv_strings(args.models),
        seeds=_csv_ints(args.seeds),
        dynamics=_dynamics_from_args(args),
        max_side=args.max_side,
    )


def cmd_sweep_run(args) -> int:
    """Evaluate a sweep grid — parallel with ``--jobs``, resumable via the
    result store."""
    spec = _spec_from_args(args)
    store = None if args.no_cache else sweep_store()

    def progress(done, total, task, point, cached):
        source = "store" if cached else f"{point.measured * 1e3:.2f} ms"
        print(
            f"[{done}/{total}] {_deck_label(task.deck)} p={task.num_ranks}"
            f" {task.partition_method} seed={task.seed}"
            f" {_dynamic_label(task)}: {source}",
            flush=True,
        )

    outcomes = run_sweep(
        spec,
        jobs=args.jobs,
        store=store,
        progress=None if args.quiet else progress,
    )

    groups: dict = {}
    for outcome in outcomes:
        task = outcome.task
        key = (
            _deck_label(task.deck),
            task.cluster.name,
            task.partition_method,
            task.seed,
            _dynamic_label(task),
        )
        groups.setdefault(key, []).append(outcome.point)
    for (deck_label, cluster_name, method, seed, dyn_label), points in groups.items():
        out = TextTable(
            f"{deck_label} deck on {cluster_name} ({method}, seed {seed}, {dyn_label})",
            ["PEs", "measured (ms)"]
            + [f"{m} (ms)" for m in spec.models]
            + [f"{m} err" for m in spec.models],
        )
        for point in points:
            out.add_row(
                point.num_ranks,
                point.measured * 1e3,
                *[point.predicted[m] * 1e3 for m in spec.models],
                *[f"{point.error(m) * 100:+.1f}%" for m in spec.models],
            )
        print(out.render())
        print()
    computed = sum(1 for o in outcomes if not o.cached)
    cached = len(outcomes) - computed
    print(f"{len(outcomes)} points: {computed} simulated, {cached} from store")
    return 0


def cmd_sweep_status(args) -> int:
    """Report grid completion against the result store."""
    spec = _spec_from_args(args)
    status = sweep_status(spec, sweep_store())
    out = TextTable("sweep status", ["points", "count"])
    out.add_row("total", status.total)
    out.add_row("completed", status.completed)
    out.add_row("pending", status.pending)
    print(out.render())
    return 0


def cmd_sweep_clear(args) -> int:
    """Drop stored sweep artifacts (and optionally cached partitions)."""
    removed = sweep_store().clear()
    print(f"removed {removed} stored sweep points")
    if args.partitions:
        count = 0
        for path in sorted(partition_cache_dir().glob("*.npz")):
            path.unlink()
            count += 1
        print(f"removed {count} cached partitions")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Krak performance-model reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--deck", default="small", help="small|medium|large or NXxNY")
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument("--smp", action="store_true", help="enable 4-way SMP hierarchy")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--max-side", type=int, default=256, help="calibration range")

    p_info = sub.add_parser("info", help="deck and machine summary")
    p_info.add_argument("--deck", default="small")
    p_info.set_defaults(func=cmd_info)

    p_cal = sub.add_parser("calibrate", help="print cost curves")
    common(p_cal)
    p_cal.add_argument("--phase", type=int, default=2, choices=range(1, 16))
    p_cal.set_defaults(func=cmd_calibrate)

    p_val = sub.add_parser("validate", help="measure + predict one config")
    common(p_val)
    p_val.add_argument("--ranks", type=int, default=16)
    p_val.set_defaults(func=cmd_validate)

    p_sweep = sub.add_parser(
        "sweep",
        help="strong-scaling sweep (legacy table) or grid subcommands run|status|clear",
        description=(
            "Without a subcommand: the legacy single-deck strong-scaling "
            "table.  Subcommands orchestrate declarative grids: `run` "
            "evaluates (in parallel with --jobs, resumably via the on-disk "
            "result store), `status` reports completion, `clear` drops "
            "stored results."
        ),
    )
    common(p_sweep)
    p_sweep.add_argument("--max-ranks", type=int, default=64)
    p_sweep.set_defaults(func=cmd_sweep)
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command")

    def grid(p):
        p.add_argument(
            "--decks", default="small", help="comma list: small|medium|large or NXxNY"
        )
        p.add_argument(
            "--ranks", default="", help="comma list of PE counts (overrides --max-ranks)"
        )
        p.add_argument(
            "--max-ranks", type=int, default=64, help="powers of two up to this"
        )
        p.add_argument(
            "--methods", default="multilevel",
            help="comma list: multilevel|rcb|block|structured-block",
        )
        p.add_argument(
            "--models", default="homogeneous,heterogeneous",
            help="comma list: mesh-specific|homogeneous|heterogeneous",
        )
        p.add_argument("--seeds", default="1", help="comma list of partition seeds")
        p.add_argument("--speed", type=float, default=1.0, help="CPU speed multiplier")
        p.add_argument("--smp", action="store_true", help="enable 4-way SMP hierarchy")
        p.add_argument("--max-side", type=int, default=256, help="calibration range")
        p.add_argument(
            "--dynamic", default="static",
            help=(
                "comma list of workloads: static (no time evolution) or a "
                "repartition policy never|every:N|imbalance:X"
            ),
        )
        p.add_argument(
            "--burn-mult", type=float, default=4.0,
            help="cost multiplier for actively-burning cells (dynamic runs)",
        )
        p.add_argument(
            "--dyn-iterations", type=int, default=12,
            help="iterations per dynamic run (static runs keep the default 3)",
        )

    p_run = sweep_sub.add_parser(
        "run", help="evaluate a sweep grid (parallel + resumable)"
    )
    grid(p_run)
    p_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    p_run.add_argument(
        "--no-cache", action="store_true", help="skip the result store entirely"
    )
    p_run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    p_run.set_defaults(func=cmd_sweep_run)

    p_status = sweep_sub.add_parser(
        "status", help="report how much of a grid is already stored"
    )
    grid(p_status)
    p_status.set_defaults(func=cmd_sweep_status)

    p_clear = sweep_sub.add_parser("clear", help="drop stored sweep results")
    p_clear.add_argument(
        "--partitions", action="store_true", help="also drop cached partitions"
    )
    p_clear.set_defaults(func=cmd_sweep_clear)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
