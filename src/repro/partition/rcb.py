"""Recursive coordinate bisection (RCB) — a fast geometric baseline.

RCB splits the cell set at the weighted median along the longer bounding-box
axis, recursing with weighted targets for odd part counts.  On structured
meshes it yields near-rectangular subgrids, which makes it both a good
baseline for the ablation benchmarks and a fast path for very large decks.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.connectivity import build_face_table
from repro.mesh.geometry import cell_centroids
from repro.mesh.grid import QuadMesh
from repro.partition.base import Partition


def _rcb_recursive(
    coords: np.ndarray,
    ids: np.ndarray,
    k: int,
    labels: np.ndarray,
    offset: int,
) -> None:
    if k == 1:
        labels[ids] = offset
        return
    k0 = k // 2
    pts = coords[ids]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    order = np.argsort(pts[:, axis], kind="stable")
    split = int(round(ids.shape[0] * (k0 / k)))
    split = min(max(split, 1), ids.shape[0] - 1)
    left = ids[order[:split]]
    right = ids[order[split:]]
    _rcb_recursive(coords, left, k0, labels, offset)
    _rcb_recursive(coords, right, k - k0, labels, offset + k0)


def rcb_partition(mesh: QuadMesh, num_ranks: int) -> Partition:
    """Partition ``mesh`` into ``num_ranks`` parts by coordinate bisection."""
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")
    if num_ranks > mesh.num_cells:
        raise ValueError(
            f"cannot split {mesh.num_cells} cells into {num_ranks} parts"
        )
    coords = cell_centroids(mesh)
    labels = np.full(mesh.num_cells, -1, dtype=np.int64)
    _rcb_recursive(coords, np.arange(mesh.num_cells), num_ranks, labels, 0)
    assert labels.min() >= 0
    return Partition(num_ranks=num_ranks, cell_rank=labels, method="rcb")


__all__ = ["rcb_partition"]
