"""Multilevel recursive-bisection k-way partitioner (the Metis stand-in).

Pipeline per bisection, exactly as in multilevel partitioning literature:

1. **Coarsen** by repeated heavy-edge matching + contraction until the graph
   is small.
2. **Initial partition** of the coarsest graph by greedy region growing.
3. **Uncoarsen**, projecting the bisection back level by level with
   Fiduccia–Mattheyses boundary refinement at each level.

k-way partitions are produced by recursive bisection with weighted targets,
so any ``k`` (not just powers of two) balances cell counts.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.connectivity import FaceTable, build_face_table
from repro.mesh.grid import QuadMesh
from repro.partition.base import Partition
from repro.partition.graph import CSRGraph, contract, dual_graph_of_mesh, graph_from_edges
from repro.partition.matching import heavy_edge_matching
from repro.partition.refine import fm_refine, greedy_grow_bisection
from repro.util import seeded_rng

#: Stop coarsening when the graph has at most this many vertices.
COARSEST_SIZE = 96
#: Stop coarsening when a round shrinks the graph by less than this factor.
MIN_SHRINK = 0.95


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> CSRGraph:
    """Extract the subgraph induced by ``vertices`` (renumbered 0..len-1)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    local_id = np.full(n, -1, dtype=np.int64)
    local_id[vertices] = np.arange(vertices.shape[0])

    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    keep = (local_id[src] >= 0) & (local_id[graph.indices] >= 0)
    u = local_id[src[keep]]
    v = local_id[graph.indices[keep]]
    w = graph.eweights[keep]
    half = u < v  # each undirected edge enters once
    return graph_from_edges(
        vertices.shape[0], u[half], v[half], w[half], graph.vweights[vertices]
    )


def multilevel_bisect(
    graph: CSRGraph,
    target_frac0: float,
    rng: np.random.Generator,
    imbalance_tol: float = 0.03,
) -> np.ndarray:
    """Bisect ``graph`` with the multilevel pipeline; returns 0/1 sides."""
    if graph.num_vertices <= COARSEST_SIZE:
        side = greedy_grow_bisection(graph, target_frac0, rng)
        fm_refine(graph, side, target_frac0, rng, imbalance_tol=imbalance_tol)
        return side

    # Coarsening phase.
    levels: list[tuple[CSRGraph, np.ndarray]] = []  # (fine graph, fine→coarse map)
    current = graph
    max_vw = max(1, int(np.ceil(1.5 * current.total_vweight / COARSEST_SIZE)))
    while current.num_vertices > COARSEST_SIZE:
        match = heavy_edge_matching(current, rng, max_vweight=max_vw)
        coarse, mapping = contract(current, match)
        if coarse.num_vertices >= MIN_SHRINK * current.num_vertices:
            break  # matching stalled (e.g. star graphs); bail out
        levels.append((current, mapping))
        current = coarse

    # Initial partition on the coarsest graph.
    side = greedy_grow_bisection(current, target_frac0, rng)
    fm_refine(current, side, target_frac0, rng, imbalance_tol=imbalance_tol)

    # Uncoarsening with refinement.  Most of the cut improvement happens on
    # the coarse graphs; the fine levels mostly polish the projected boundary,
    # so one pass there keeps the cost near-linear in graph size.
    for fine, mapping in reversed(levels):
        side = side[mapping]
        passes = 4 if fine.num_vertices <= 4096 else 1
        fm_refine(
            fine, side, target_frac0, rng,
            max_passes=passes, imbalance_tol=imbalance_tol,
        )
    return side


def _partition_recursive(
    graph: CSRGraph,
    k: int,
    rng: np.random.Generator,
    labels: np.ndarray,
    vertex_ids: np.ndarray,
    offset: int,
    imbalance_tol: float,
) -> None:
    """Assign ranks ``offset .. offset+k-1`` to ``vertex_ids`` recursively."""
    if k == 1:
        labels[vertex_ids] = offset
        return
    k0 = k // 2
    side = multilevel_bisect(graph, k0 / k, rng, imbalance_tol=imbalance_tol)
    part0 = np.flatnonzero(side == 0)
    part1 = np.flatnonzero(side == 1)
    # Each side must end up with at least as many vertices as the parts it
    # will host; repair degenerate bisections on tiny graphs by shifting
    # vertices across (weights are ~1 there, so balance is unaffected).
    if part0.size < k0:
        deficit = k0 - part0.size
        part0 = np.concatenate([part0, part1[:deficit]])
        part1 = part1[deficit:]
    elif part1.size < k - k0:
        deficit = (k - k0) - part1.size
        part1 = np.concatenate([part0[-deficit:], part1])
        part0 = part0[:-deficit]
    sub0 = induced_subgraph(graph, part0)
    sub1 = induced_subgraph(graph, part1)
    _partition_recursive(sub0, k0, rng, labels, vertex_ids[part0], offset, imbalance_tol)
    _partition_recursive(
        sub1, k - k0, rng, labels, vertex_ids[part1], offset + k0, imbalance_tol
    )


def multilevel_partition_graph(
    graph: CSRGraph,
    num_ranks: int,
    seed: int = 0,
    imbalance_tol: float = 0.03,
) -> np.ndarray:
    """Partition an arbitrary :class:`CSRGraph` into ``num_ranks`` parts."""
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")
    if num_ranks > graph.num_vertices:
        raise ValueError(
            f"cannot split {graph.num_vertices} vertices into {num_ranks} parts"
        )
    rng = seeded_rng(seed)
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    # Bisection slack compounds multiplicatively over ~log2(k) levels, so the
    # per-level tolerance must be the requested total divided by the depth.
    depth = max(1, int(np.ceil(np.log2(num_ranks))))
    per_level_tol = max(0.004, imbalance_tol / depth)
    _partition_recursive(
        graph,
        num_ranks,
        rng,
        labels,
        np.arange(graph.num_vertices),
        0,
        per_level_tol,
    )
    assert labels.min() >= 0
    return labels


def multilevel_partition(
    mesh: QuadMesh,
    num_ranks: int,
    faces: FaceTable | None = None,
    seed: int = 0,
    imbalance_tol: float = 0.03,
) -> Partition:
    """Partition a mesh's cells into ``num_ranks`` balanced parts.

    This is the project's Metis analogue: balanced cell counts, minimised
    edge cut, irregular part shapes with data-dependent neighbour counts.
    """
    if faces is None:
        faces = build_face_table(mesh)
    graph = dual_graph_of_mesh(mesh, faces)
    labels = multilevel_partition_graph(graph, num_ranks, seed, imbalance_tol)
    return Partition(num_ranks=num_ranks, cell_rank=labels, method="multilevel")
