"""Block partitioners: contiguous-id chunks and structured rectangular tiles.

The structured tiling is what the paper's *general* model idealises — equal
square subgrids with ``sqrt(Cells/PEs)`` boundary faces per side — and is
also how we build the two-process "contrived" calibration grids of
Section 3.1.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import QuadMesh
from repro.partition.base import Partition


def block_partition(num_cells: int, num_ranks: int) -> Partition:
    """Split cell ids ``0..num_cells-1`` into ``num_ranks`` contiguous chunks.

    Chunk sizes differ by at most one cell, matching the paper's equal-cells
    assumption as closely as integer division allows.
    """
    if num_ranks <= 0:
        raise ValueError(f"num_ranks must be positive, got {num_ranks}")
    if num_ranks > num_cells:
        raise ValueError(f"cannot split {num_cells} cells into {num_ranks} parts")
    # searchsorted against chunk boundaries gives near-equal parts directly.
    boundaries = (np.arange(1, num_ranks) * num_cells) // num_ranks
    labels = np.searchsorted(boundaries, np.arange(num_cells), side="right")
    return Partition(num_ranks=num_ranks, cell_rank=labels.astype(np.int64), method="block")


def _tile_counts(n: int, parts: int) -> np.ndarray:
    """Split ``n`` items into ``parts`` near-equal contiguous runs."""
    base = n // parts
    extra = n % parts
    return np.array([base + (1 if i < extra else 0) for i in range(parts)], dtype=np.int64)


def choose_tile_grid(nx: int, ny: int, num_ranks: int) -> tuple[int, int]:
    """Pick a ``px × py`` factorisation of ``num_ranks`` matching the mesh aspect.

    Chooses the factor pair whose tile aspect ratio is closest to square,
    which is exactly the general model's "each subdomain is assumed to be
    square" idealisation.
    """
    best: tuple[int, int] | None = None
    best_score = np.inf
    for px in range(1, num_ranks + 1):
        if num_ranks % px:
            continue
        py = num_ranks // px
        if px > nx or py > ny:
            continue
        tile_w = nx / px
        tile_h = ny / py
        score = abs(np.log(tile_w / tile_h))
        if score < best_score:
            best_score = score
            best = (px, py)
    if best is None:
        raise ValueError(
            f"no feasible tiling of a {nx}x{ny} mesh into {num_ranks} parts"
        )
    return best


def structured_block_partition(
    mesh: QuadMesh, num_ranks: int, px: int | None = None, py: int | None = None
) -> Partition:
    """Tile a structured mesh into ``px × py`` rectangular subgrids.

    When ``px``/``py`` are omitted they are chosen to make tiles as square
    as possible.  Requires the mesh to carry structured metadata.
    """
    if not mesh.is_structured:
        raise ValueError("structured_block_partition requires a structured mesh")
    if px is None or py is None:
        px, py = choose_tile_grid(mesh.nx, mesh.ny, num_ranks)
    if px * py != num_ranks:
        raise ValueError(f"px*py must equal num_ranks ({px}*{py} != {num_ranks})")
    if px > mesh.nx or py > mesh.ny:
        raise ValueError("more tiles than cells along an axis")

    i, j = mesh.cell_ij()
    col_edges = np.cumsum(_tile_counts(mesh.nx, px))[:-1]
    row_edges = np.cumsum(_tile_counts(mesh.ny, py))[:-1]
    tile_i = np.searchsorted(col_edges, i, side="right")
    tile_j = np.searchsorted(row_edges, j, side="right")
    labels = (tile_j * px + tile_i).astype(np.int64)
    return Partition(num_ranks=num_ranks, cell_rank=labels, method="structured-block")
