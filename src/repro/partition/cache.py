"""Disk cache for partitions.

Multilevel partitioning of the large deck at 512 ranks costs tens of
seconds; every validation table and figure reuses the same partitions, so we
memoise them as ``.npz`` files keyed by deck geometry, rank count, method,
and seed.  The cache is content-addressed by parameters only — all
partitioners are deterministic given their seed.

The cache lives under the shared :func:`repro.util.cache_root` (next to the
sweep-result store of :mod:`repro.analysis.store`) and its writes are
atomic, so parallel sweep workers that race on the same partition leave one
complete file rather than a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.mesh.connectivity import FaceTable
from repro.mesh.deck import InputDeck
from repro.partition.base import Partition
from repro.partition.multilevel import multilevel_partition
from repro.partition.rcb import rcb_partition
from repro.partition.block import block_partition, structured_block_partition
from repro.util.artifacts import cache_root


def cache_dir() -> Path:
    """Resolve the partition cache directory (honours REPRO_CACHE_DIR)."""
    return cache_root() / "partitions"


def _cache_key(deck: InputDeck, num_ranks: int, method: str, seed: int) -> str:
    mesh = deck.mesh
    return (
        f"{deck.name}-{mesh.nx}x{mesh.ny}-c{mesh.num_cells}"
        f"-p{num_ranks}-{method}-s{seed}"
    )


#: Method names understood by :func:`make_partition` / :func:`cached_partition`.
PARTITION_METHODS = ("multilevel", "rcb", "block", "structured-block")


def make_partition(
    mesh,
    num_ranks: int,
    method: str = "multilevel",
    seed: int = 0,
    faces: FaceTable | None = None,
) -> Partition:
    """Dispatch to the named partitioner — the single assembly seam.

    Every construction site (sweep tasks, the model-core pipeline, the
    verification scenario builder) routes through this dispatch, so the
    optimized stack and the reference oracle can never disagree on what a
    ``method`` string means.  Only ``multilevel`` consumes ``seed`` and
    ``faces``; the regular baselines are fully determined by the mesh.
    """
    if method == "multilevel":
        return multilevel_partition(mesh, num_ranks, faces=faces, seed=seed)
    if method == "rcb":
        return rcb_partition(mesh, num_ranks)
    if method == "block":
        return block_partition(mesh.num_cells, num_ranks)
    if method == "structured-block":
        return structured_block_partition(mesh, num_ranks)
    raise ValueError(f"unknown partition method {method!r}")


def cached_partition(
    deck: InputDeck,
    num_ranks: int,
    method: str = "multilevel",
    seed: int = 0,
    faces: FaceTable | None = None,
    use_cache: bool = True,
) -> Partition:
    """Partition ``deck`` with memoisation to disk.

    Parameters
    ----------
    method:
        ``"multilevel"`` (the Metis analogue, default), ``"rcb"``,
        ``"block"``, or ``"structured-block"``.
    use_cache:
        Disable to force recomputation (the cache file is then refreshed).
    """
    path = cache_dir() / f"{_cache_key(deck, num_ranks, method, seed)}.npz"
    if use_cache and path.exists():
        data = np.load(path)
        return Partition(
            num_ranks=num_ranks, cell_rank=data["cell_rank"], method=str(data["method"])
        )

    part = make_partition(deck.mesh, num_ranks, method=method, seed=seed, faces=faces)

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, cell_rank=part.cell_rank, method=part.method)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return part
