"""Weighted CSR graphs and the contraction primitive for multilevel
partitioning.

The partitioner works on the *dual graph* of the mesh (one vertex per cell,
one edge per interior face), the same abstraction Metis uses for
``METIS_PartMeshDual``-style mesh partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.connectivity import FaceTable, build_dual_graph
from repro.mesh.grid import QuadMesh
from repro.util import as_int_array


@dataclass(frozen=True)
class CSRGraph:
    """An undirected graph with integer vertex and edge weights, CSR layout.

    Both directions of every edge are stored, so ``indices[indptr[v]:
    indptr[v+1]]`` lists all neighbours of ``v`` and ``eweights`` aligns with
    ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "indptr", as_int_array(self.indptr, "indptr"))
        object.__setattr__(self, "indices", as_int_array(self.indices, "indices"))
        object.__setattr__(self, "eweights", as_int_array(self.eweights, "eweights"))
        object.__setattr__(self, "vweights", as_int_array(self.vweights, "vweights"))
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indices.shape != self.eweights.shape:
            raise ValueError("indices and eweights must align")
        if self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr[-1] must equal the number of stored arcs")
        if self.vweights.shape[0] != self.num_vertices:
            raise ValueError("vweights must have one entry per vertex")

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return int(self.indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the stored arc count)."""
        return int(self.indices.shape[0] // 2)

    @property
    def total_vweight(self) -> int:
        """Sum of vertex weights."""
        return int(self.vweights.sum())

    def degree(self, v: int) -> int:
        """Number of neighbours of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        return self.eweights[self.indptr[v] : self.indptr[v + 1]]


def graph_from_edges(
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray | None = None,
    vweights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from undirected edge lists.

    Parallel edges are merged by summing weights; self-loops are dropped.
    """
    u = as_int_array(u, "u")
    v = as_int_array(v, "v")
    if u.shape != v.shape:
        raise ValueError("u and v must have equal shapes")
    w = np.ones_like(u) if w is None else as_int_array(w, "w")
    if w.shape != u.shape:
        raise ValueError("w must align with u and v")

    keep = u != v
    u, v, w = u[keep], v[keep], w[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * np.int64(num_vertices) + hi
    order = np.argsort(key, kind="stable")
    key, w = key[order], w[order]
    unique_key, start = np.unique(key, return_index=True)
    merged_w = np.add.reduceat(w, start) if key.size else w
    lo = unique_key // num_vertices
    hi = unique_key % num_vertices

    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    arc_w = np.concatenate([merged_w, merged_w])
    order = np.argsort(src, kind="stable")
    src, dst, arc_w = src[order], dst[order], arc_w[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)

    if vweights is None:
        vweights = np.ones(num_vertices, dtype=np.int64)
    return CSRGraph(indptr=indptr, indices=dst, eweights=arc_w, vweights=vweights)


def dual_graph_of_mesh(mesh: QuadMesh, faces: FaceTable) -> CSRGraph:
    """The cell-adjacency graph of a mesh with unit weights."""
    indptr, indices = build_dual_graph(faces, mesh.num_cells)
    eweights = np.ones_like(indices)
    vweights = np.ones(mesh.num_cells, dtype=np.int64)
    return CSRGraph(indptr=indptr, indices=indices, eweights=eweights, vweights=vweights)


def contract(graph: CSRGraph, match: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Contract matched vertex pairs into a coarse graph.

    Parameters
    ----------
    graph:
        The fine graph.
    match:
        ``match[i]`` is ``i``'s partner (or ``i`` itself when unmatched);
        must be an involution (``match[match[i]] == i``).

    Returns
    -------
    coarse, mapping:
        The contracted graph and the fine→coarse vertex map.
    """
    match = as_int_array(match, "match")
    n = graph.num_vertices
    if match.shape != (n,):
        raise ValueError("match must have one entry per vertex")
    if not np.array_equal(match[match], np.arange(n)):
        raise ValueError("match must be an involution")

    rep = np.minimum(np.arange(n), match)  # canonical representative per pair
    unique_rep, mapping = np.unique(rep, return_inverse=True)
    num_coarse = unique_rep.shape[0]

    vweights = np.zeros(num_coarse, dtype=np.int64)
    np.add.at(vweights, mapping, graph.vweights)

    src = np.repeat(mapping, np.diff(graph.indptr))
    dst = mapping[graph.indices]
    # Each undirected fine edge appears as two arcs; keep one direction to
    # avoid double-counting weights in graph_from_edges.
    keep = src < dst
    coarse = graph_from_edges(
        num_coarse, src[keep], dst[keep], graph.eweights[keep], vweights
    )
    return coarse, mapping
