"""The :class:`Partition` container shared by all partitioning algorithms."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_int_array, bincount_fixed


@dataclass(frozen=True)
class Partition:
    """An assignment of cells to ranks.

    Attributes
    ----------
    num_ranks:
        Number of parts (processors).
    cell_rank:
        Rank id per cell, shape ``(num_cells,)``, values in ``[0, num_ranks)``.
    method:
        Human-readable label of the producing algorithm.
    """

    num_ranks: int
    cell_rank: np.ndarray
    method: str = "unknown"

    def __post_init__(self) -> None:
        ranks = as_int_array(self.cell_rank, "cell_rank")
        object.__setattr__(self, "cell_rank", ranks)
        if self.num_ranks <= 0:
            raise ValueError(f"num_ranks must be positive, got {self.num_ranks}")
        if ranks.size and (ranks.min() < 0 or ranks.max() >= self.num_ranks):
            raise ValueError(f"cell_rank values must lie in [0, {self.num_ranks})")

    @property
    def num_cells(self) -> int:
        """Number of partitioned cells."""
        return int(self.cell_rank.shape[0])

    def counts(self) -> np.ndarray:
        """Cells per rank, length ``num_ranks``."""
        return bincount_fixed(self.cell_rank, self.num_ranks)

    def cells_of(self, rank: int) -> np.ndarray:
        """Cell ids assigned to ``rank`` (ascending)."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank must lie in [0, {self.num_ranks}), got {rank}")
        return np.flatnonzero(self.cell_rank == rank)

    def material_census(self, cell_material: np.ndarray, num_materials: int) -> np.ndarray:
        """Cells per (rank, material), shape ``(num_ranks, num_materials)``.

        This is the ``Cells`` matrix of the paper's Equation (1): entry
        ``[j, m]`` counts cells of material ``m`` on processor ``j``.
        """
        cell_material = as_int_array(cell_material, "cell_material")
        if cell_material.shape != self.cell_rank.shape:
            raise ValueError("cell_material must align with cell_rank")
        combined = self.cell_rank * np.int64(num_materials) + cell_material
        flat = bincount_fixed(combined, self.num_ranks * num_materials)
        return flat.reshape(self.num_ranks, num_materials)
