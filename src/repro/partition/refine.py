"""Fiduccia–Mattheyses boundary refinement for 2-way partitions.

Used at every uncoarsening level of the multilevel bisection.  The
implementation is the classic single-move-with-rollback FM: vertices are
moved one at a time in best-gain order subject to a balance constraint, and
the pass is rolled back to the best prefix seen.  Only boundary vertices
enter the priority queue, so a pass costs O(boundary · degree · log n).

The move loops run over plain Python lists rather than NumPy arrays: every
quantity involved (gains, weights, cuts) is an integer, and single-element
list access is an order of magnitude cheaper than NumPy scalar indexing.
Heap contents, tie-break draws, and move order are unchanged, so the
refined bisection is identical to the array-based implementation — this is
the repartition-dominated hot path of dynamic runs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.graph import CSRGraph


def compute_side_weights(graph: CSRGraph, side: np.ndarray) -> tuple[int, int]:
    """Total vertex weight on side 0 and side 1."""
    w1 = int(graph.vweights[side.astype(bool)].sum())
    return graph.total_vweight - w1, w1


def compute_cut(graph: CSRGraph, side: np.ndarray) -> int:
    """Total weight of edges crossing the bisection."""
    cross = side[graph.indices] != np.repeat(side, np.diff(graph.indptr))
    return int(graph.eweights[cross].sum() // 2)


def _internal_external(graph: CSRGraph, side: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex edge weight to the same side (internal) and other (external)."""
    src_side = np.repeat(side, np.diff(graph.indptr))
    same = side[graph.indices] == src_side
    n = graph.num_vertices
    internal = np.zeros(n, dtype=np.int64)
    external = np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    np.add.at(internal, src[same], graph.eweights[same])
    np.add.at(external, src[~same], graph.eweights[~same])
    return internal, external


def fm_refine(
    graph: CSRGraph,
    side: np.ndarray,
    target_frac0: float = 0.5,
    rng: np.random.Generator | None = None,
    max_passes: int = 8,
    imbalance_tol: float = 0.03,
) -> int:
    """Refine a bisection in place; return the final cut weight.

    Parameters
    ----------
    graph:
        The graph being bisected.
    side:
        0/1 assignment per vertex, modified in place.
    target_frac0:
        Desired fraction of total vertex weight on side 0 (≠ 0.5 when the
        recursive driver splits an odd rank count).
    rng:
        Tie-break source; ``None`` uses a fixed generator.
    max_passes:
        FM passes; stops early when a pass yields no improvement.
    imbalance_tol:
        Allowed relative deviation of side-0 weight from its target.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = graph.num_vertices
    side = np.asarray(side)
    if side.shape != (n,):
        raise ValueError("side must have one entry per vertex")

    total = graph.total_vweight
    target0 = target_frac0 * total
    max_vw = int(graph.vweights.max()) if n else 1
    slack = max(max_vw, int(np.ceil(imbalance_tol * total)))

    internal_a, external_a = _internal_external(graph, side)
    cut = compute_cut(graph, side)
    w0, _ = compute_side_weights(graph, side)

    # List-backed working state: all integers, identical arithmetic.
    side_l = side.tolist()
    internal = internal_a.tolist()
    external = external_a.tolist()
    vweights = graph.vweights.tolist()
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    eweights = graph.eweights.tolist()
    stamp = [0] * n

    for _ in range(max_passes):
        locked = [False] * n
        heap: list = []
        tiebreak = rng.permutation(n).tolist()

        heappush = heapq.heappush

        def push(v: int) -> None:
            gain = external[v] - internal[v]
            stamp[v] += 1
            heappush(heap, (-gain, tiebreak[v], v, stamp[v]))

        for v in np.flatnonzero(external_a > 0).tolist():
            push(v)

        moves: list[int] = []
        best_prefix = 0
        best_cut = cut
        w0_now = w0
        cut_now = cut
        move_limit = max(64, 4 * len(heap))
        # Classic FM early exit: abandon the pass once the hill-climb has
        # gone this long without finding a new best prefix.
        stall_limit = max(48, len(heap) // 8)

        while heap and len(moves) < move_limit:
            neg_gain, _, v, st = heapq.heappop(heap)
            if locked[v] or st != stamp[v]:
                continue
            gain = -neg_gain
            vw = vweights[v]
            new_w0 = w0_now - vw if side_l[v] == 0 else w0_now + vw
            # Balance gate: allow the move if it keeps side 0 within the
            # slack band, or strictly improves distance to the target.
            if abs(new_w0 - target0) > slack and abs(new_w0 - target0) >= abs(
                w0_now - target0
            ):
                locked[v] = True
                continue

            # Apply the move.
            new_side = 1 - side_l[v]
            side_l[v] = new_side
            locked[v] = True
            w0_now = new_w0
            cut_now -= gain
            internal[v], external[v] = external[v], internal[v]
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                w = eweights[e]
                if side_l[u] == new_side:
                    internal[u] += w
                    external[u] -= w
                else:
                    internal[u] -= w
                    external[u] += w
                if not locked[u]:
                    push(u)
            moves.append(v)

            # Prefer better cuts; among equal cuts prefer better balance.
            if cut_now < best_cut:
                best_cut = cut_now
                best_prefix = len(moves)
            elif len(moves) - best_prefix > stall_limit:
                break

        # Roll back to the best prefix.
        for v in moves[best_prefix:]:
            new_side = 1 - side_l[v]
            side_l[v] = new_side
            internal[v], external[v] = external[v], internal[v]
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                w = eweights[e]
                if side_l[u] == new_side:
                    internal[u] += w
                    external[u] -= w
                else:
                    internal[u] -= w
                    external[u] += w
        side[:] = side_l
        external_a = np.asarray(external, dtype=np.int64)
        w0, _ = compute_side_weights(graph, side)
        improved = best_cut < cut
        cut = best_cut
        if not improved:
            break

    side[:] = side_l
    return cut


def greedy_grow_bisection(
    graph: CSRGraph, target_frac0: float, rng: np.random.Generator, trials: int = 4
) -> np.ndarray:
    """Initial bisection by greedy region growing (Metis's GGGP analogue).

    Grows side 0 from a random seed vertex, always absorbing the frontier
    vertex most connected to the region, until side 0 reaches its target
    weight.  Runs ``trials`` seeds and keeps the smallest cut.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    total = graph.total_vweight
    target0 = target_frac0 * total

    vweights = graph.vweights.tolist()
    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    eweights = graph.eweights.tolist()

    best_side: np.ndarray | None = None
    best_cut = np.iinfo(np.int64).max
    for _ in range(max(1, trials)):
        side = [1] * n
        grown = 0
        # Connectivity of each frontier vertex to the growing region.
        conn = [0] * n
        heap: list = []
        stamp = [0] * n
        in_region = [False] * n

        heappush = heapq.heappush

        def push(v: int) -> None:
            stamp[v] += 1
            heappush(heap, (-conn[v], int(rng.integers(n + 1)), v, stamp[v]))

        start = int(rng.integers(n))
        push(start)
        while grown < target0:
            while heap:
                _, _, v, st = heapq.heappop(heap)
                if not in_region[v] and st == stamp[v]:
                    break
            else:
                # Disconnected remainder: restart from any vertex outside.
                try:
                    v = in_region.index(False)
                except ValueError:
                    break
            in_region[v] = True
            side[v] = 0
            grown += vweights[v]
            for e in range(indptr[v], indptr[v + 1]):
                u = indices[e]
                if not in_region[u]:
                    conn[u] += eweights[e]
                    push(u)
        side_arr = np.asarray(side, dtype=np.int64)
        cut = compute_cut(graph, side_arr)
        if cut < best_cut:
            best_cut = cut
            best_side = side_arr
    assert best_side is not None
    return best_side
