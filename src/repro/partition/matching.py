"""Heavy-edge matching for multilevel coarsening.

Classic Metis coarsening visits vertices in random order and matches each
with its heaviest unmatched neighbour.  A strictly sequential visit is slow
in Python, so we use the standard parallel-friendly variant: every vertex
*proposes* to its heaviest eligible neighbour (ties broken by lower id), and
mutual proposals are accepted; a few rounds match almost as many vertices as
the sequential algorithm, which is all coarsening needs.
"""

from __future__ import annotations

import numpy as np

from repro.partition.graph import CSRGraph


def _segment_argmax_neighbor(
    graph: CSRGraph, eligible: np.ndarray, tiebreak: np.ndarray
) -> np.ndarray:
    """For each vertex, its max-weight eligible neighbour (or -1).

    ``tiebreak`` is a per-vertex random permutation value; among equal-weight
    neighbours the one with the smallest tiebreak value wins, which keeps the
    matching deterministic given the RNG seed.
    """
    n = graph.num_vertices
    arc_dst = graph.indices
    arc_ok = eligible[arc_dst]
    # Composite score: primary = weight, secondary = reversed tiebreak.
    w = graph.eweights.astype(np.float64)
    score = np.where(arc_ok, w * (n + 1) + (n - tiebreak[arc_dst]), -1.0)

    best = np.full(n, -1, dtype=np.int64)
    starts = graph.indptr[:-1]
    ends = graph.indptr[1:]
    nonempty = ends > starts
    if not np.any(nonempty):
        return best
    # reduceat over CSR segments; empty segments produce garbage we mask out.
    seg_max = np.maximum.reduceat(score, np.maximum(starts, 0)[nonempty])
    idx_best = np.full(n, -1, dtype=np.int64)
    # Find the arg of the max per segment: compare score to segment max.
    seg_of_arc = np.repeat(np.arange(n), np.diff(graph.indptr))
    max_per_vertex = np.full(n, -np.inf)
    max_per_vertex[np.flatnonzero(nonempty)] = seg_max
    is_max = score == max_per_vertex[seg_of_arc]
    # First arc achieving the max in each segment wins.
    arc_ids = np.arange(arc_dst.shape[0])
    first_max = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first_max, seg_of_arc[is_max], arc_ids[is_max])
    has = first_max != np.iinfo(np.int64).max
    idx_best[has] = arc_dst[first_max[has]]
    valid = has & (max_per_vertex > -0.5)
    best[valid] = idx_best[valid]
    return best


def heavy_edge_matching(
    graph: CSRGraph,
    rng: np.random.Generator,
    max_rounds: int = 4,
    max_vweight: int | None = None,
) -> np.ndarray:
    """Compute a heavy-edge matching as an involution array.

    Parameters
    ----------
    graph:
        The graph to match.
    rng:
        Seeded generator for deterministic tie-breaking.
    max_rounds:
        Mutual-proposal rounds; each round matches a large fraction of the
        remaining eligible vertices.
    max_vweight:
        If given, refuse matches whose combined vertex weight would exceed
        this bound (keeps coarse vertices from ballooning, as in Metis).

    Returns
    -------
    match:
        ``match[i]`` = partner of ``i`` or ``i`` when unmatched.
    """
    n = graph.num_vertices
    match = np.arange(n, dtype=np.int64)
    if n == 0 or graph.indices.size == 0:
        return match
    eligible = np.ones(n, dtype=bool)

    for _ in range(max_rounds):
        if not np.any(eligible):
            break
        tiebreak = rng.permutation(n)
        proposal = _segment_argmax_neighbor(graph, eligible, tiebreak)
        # A vertex only proposes if it is itself eligible.
        proposal[~eligible] = -1
        has = proposal >= 0
        # Mutual: proposal[proposal[i]] == i.
        mutual = has.copy()
        idx = np.flatnonzero(has)
        mutual[idx] = proposal[proposal[idx]] == idx
        if max_vweight is not None:
            idx = np.flatnonzero(mutual)
            combined = graph.vweights[idx] + graph.vweights[proposal[idx]]
            mutual[idx] &= combined <= max_vweight
        winners = np.flatnonzero(mutual)
        if winners.size == 0:
            break
        match[winners] = proposal[winners]
        eligible[winners] = False
        eligible[proposal[winners]] = False

    return match
