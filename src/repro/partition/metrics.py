"""Partition-quality metrics: edge cut, balance, neighbour statistics.

These are the quantities Metis optimises ("balance cell counts on each
processor while minimizing edge cuts") and the quantities that drive the
communication model, so the ablation benches report them for every
partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.base import Partition
from repro.partition.graph import CSRGraph
from repro.util import as_int_array


def edge_cut(graph: CSRGraph, labels: np.ndarray) -> int:
    """Total weight of graph edges whose endpoints lie in different parts."""
    labels = as_int_array(labels, "labels")
    src = np.repeat(labels, np.diff(graph.indptr))
    cross = labels[graph.indices] != src
    return int(graph.eweights[cross].sum() // 2)


def imbalance(counts: np.ndarray) -> float:
    """Load imbalance ``max(counts) / mean(counts)`` (1.0 = perfect)."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0 or counts.sum() == 0:
        raise ValueError("counts must be non-empty with a positive total")
    return float(counts.max() / counts.mean())


def neighbor_counts(graph: CSRGraph, labels: np.ndarray, num_ranks: int) -> np.ndarray:
    """Distinct neighbouring parts per part, length ``num_ranks``."""
    labels = as_int_array(labels, "labels")
    src = np.repeat(labels, np.diff(graph.indptr))
    dst = labels[graph.indices]
    cross = src != dst
    pairs = np.unique(src[cross] * np.int64(num_ranks) + dst[cross])
    out = np.zeros(num_ranks, dtype=np.int64)
    np.add.at(out, (pairs // num_ranks).astype(np.int64), 1)
    return out


@dataclass(frozen=True)
class PartitionQuality:
    """Summary quality metrics of one partition."""

    method: str
    num_ranks: int
    edge_cut: int
    imbalance: float
    mean_neighbors: float
    min_neighbors: int
    max_neighbors: int

    def as_row(self) -> str:
        """Render as a fixed-width report row."""
        return (
            f"{self.method:>18s} {self.num_ranks:>5d} {self.edge_cut:>9d} "
            f"{self.imbalance:>9.4f} {self.mean_neighbors:>8.2f} "
            f"{self.min_neighbors:>4d} {self.max_neighbors:>4d}"
        )


def partition_quality(graph: CSRGraph, partition: Partition) -> PartitionQuality:
    """Compute :class:`PartitionQuality` for ``partition`` over ``graph``."""
    counts = partition.counts()
    nbrs = neighbor_counts(graph, partition.cell_rank, partition.num_ranks)
    active = nbrs[counts > 0] if partition.num_ranks > 1 else nbrs
    return PartitionQuality(
        method=partition.method,
        num_ranks=partition.num_ranks,
        edge_cut=edge_cut(graph, partition.cell_rank),
        imbalance=imbalance(counts[counts > 0]),
        mean_neighbors=float(active.mean()) if active.size else 0.0,
        min_neighbors=int(active.min()) if active.size else 0,
        max_neighbors=int(active.max()) if active.size else 0,
    )
