"""Graph partitioning substrate (the paper's Metis 4.0 stand-in).

Section 2: "Partitioning is performed using Metis with an algorithm to
balance cell counts on each processor while minimizing edge cuts.  The
partitioning is done in an irregular fashion."  We provide a from-scratch
multilevel k-way partitioner with the same contract, plus two regular
baselines (recursive coordinate bisection and block partitioning) used by
the ablation benchmarks.
"""

from repro.partition.base import Partition
from repro.partition.graph import CSRGraph, dual_graph_of_mesh
from repro.partition.matching import heavy_edge_matching
from repro.partition.block import block_partition, structured_block_partition
from repro.partition.rcb import rcb_partition
from repro.partition.multilevel import multilevel_partition
from repro.partition.metrics import (
    PartitionQuality,
    edge_cut,
    imbalance,
    partition_quality,
)
from repro.partition.cache import PARTITION_METHODS, cached_partition, make_partition
from repro.partition.dynamic import (
    EveryNPolicy,
    ImbalanceThresholdPolicy,
    NeverPolicy,
    RepartitionPolicy,
    migration_matrix,
    parse_policy,
    weighted_repartition,
)

__all__ = [
    "RepartitionPolicy",
    "NeverPolicy",
    "EveryNPolicy",
    "ImbalanceThresholdPolicy",
    "parse_policy",
    "weighted_repartition",
    "migration_matrix",
    "Partition",
    "CSRGraph",
    "dual_graph_of_mesh",
    "heavy_edge_matching",
    "block_partition",
    "structured_block_partition",
    "rcb_partition",
    "multilevel_partition",
    "PartitionQuality",
    "edge_cut",
    "imbalance",
    "partition_quality",
    "cached_partition",
    "make_partition",
    "PARTITION_METHODS",
]
