"""Dynamic repartitioning: policies, weighted repartitioning, migration.

A static partition balances *cell counts*, but Krak's per-cell cost evolves
as the burn front moves (Section 2.1), so mid-run the cost-weighted load can
become arbitrarily imbalanced.  This module supplies the partition-level
pieces of the dynamic-workload subsystem:

* :class:`RepartitionPolicy` and its three concrete policies — ``never``
  (the control), ``every_n`` (fixed cadence), and ``imbalance_threshold``
  (repartition when the weighted load imbalance exceeds a bound);
* :func:`weighted_repartition` — recompute a partition from per-cell work
  weights via the existing multilevel substrate (whose bisections balance
  vertex weights, not just counts);
* :func:`migration_matrix` — the cell flows between an old and a new
  partition, which size the point-to-point migration messages the simulator
  charges for a repartition.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.mesh.connectivity import FaceTable, build_face_table
from repro.mesh.grid import QuadMesh
from repro.partition.base import Partition
from repro.partition.graph import CSRGraph, dual_graph_of_mesh
from repro.partition.metrics import imbalance
from repro.partition.multilevel import multilevel_partition_graph
from repro.util import as_int_array


@dataclass(frozen=True)
class RepartitionPolicy:
    """Decides, at each iteration boundary, whether to repartition.

    Policies are pure functions of the iteration index and the current
    effective work per rank, so every rank of the simulation reaches the
    same decision from the same (globally consistent) census.

    ``name`` is a class attribute, not a dataclass field, so the knob of
    each concrete policy is its first positional argument
    (``EveryNPolicy(2)``, ``ImbalanceThresholdPolicy(1.15)``).
    """

    name: ClassVar[str] = "policy"

    def should_repartition(self, iteration: int, work_by_rank: np.ndarray) -> bool:
        """True when the partition should be recomputed before ``iteration``."""
        raise NotImplementedError


@dataclass(frozen=True)
class NeverPolicy(RepartitionPolicy):
    """The control: keep the initial partition for the whole run."""

    name: ClassVar[str] = "never"

    def should_repartition(self, iteration: int, work_by_rank: np.ndarray) -> bool:
        return False


@dataclass(frozen=True)
class EveryNPolicy(RepartitionPolicy):
    """Repartition on a fixed cadence of ``period`` iterations."""

    name: ClassVar[str] = "every_n"
    period: int = 4

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")

    def should_repartition(self, iteration: int, work_by_rank: np.ndarray) -> bool:
        return iteration > 0 and iteration % self.period == 0


@dataclass(frozen=True)
class ImbalanceThresholdPolicy(RepartitionPolicy):
    """Repartition when weighted load imbalance exceeds ``threshold``.

    Imbalance is ``max(work) / mean(work)`` (1.0 = perfect), the same
    statistic :func:`repro.partition.metrics.imbalance` reports.
    """

    name: ClassVar[str] = "imbalance_threshold"
    threshold: float = 1.2

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise ValueError(f"threshold must exceed 1.0, got {self.threshold}")

    def should_repartition(self, iteration: int, work_by_rank: np.ndarray) -> bool:
        return imbalance(np.asarray(work_by_rank, dtype=np.float64)) > self.threshold


def parse_policy(spec: str) -> RepartitionPolicy:
    """Parse a CLI policy spec: ``never``, ``every:N``, or ``imbalance:X``."""
    text = spec.strip().lower()
    if text == "never":
        return NeverPolicy()
    if ":" in text:
        kind, _, arg = text.partition(":")
        if kind == "every":
            return EveryNPolicy(period=int(arg))
        if kind == "imbalance":
            return ImbalanceThresholdPolicy(threshold=float(arg))
    raise ValueError(
        f"unknown repartition policy {spec!r}; use never, every:N, or imbalance:X"
    )


# In-process memo for weighted_repartition, content-addressed like the disk
# cache in repro.partition.cache: the multilevel pipeline is a deterministic
# pure function of (dual graph, weights, num_ranks, seed, imbalance_tol), and
# the dual graph is itself determined by the mesh connectivity + face table.
# Dynamic studies recompute identical repartitions constantly — the oracle
# differential replays the production run's exact calls, bench repeats re-run
# the same trajectory, and cadence sweeps share prefixes — so memoized hits
# return the identical Partition without redoing the multilevel work.
_REPARTITION_MEMO: OrderedDict[tuple, np.ndarray] = OrderedDict()
_REPARTITION_MEMO_MAX = 256


def clear_repartition_memo() -> None:
    """Drop all memoized weighted repartitions (for tests and benchmarks)."""
    _REPARTITION_MEMO.clear()


def _repartition_key(
    mesh: QuadMesh,
    cell_weights: np.ndarray,
    num_ranks: int,
    faces: FaceTable | None,
    seed: int,
    imbalance_tol: float,
) -> tuple:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(mesh.cell_nodes).tobytes())
    if faces is not None:
        h.update(np.ascontiguousarray(faces.face_cells).tobytes())
    h.update(np.ascontiguousarray(cell_weights).tobytes())
    return (h.hexdigest(), int(num_ranks), int(seed), float(imbalance_tol))


def weighted_repartition(
    mesh: QuadMesh,
    cell_weights: np.ndarray,
    num_ranks: int,
    faces: FaceTable | None = None,
    seed: int = 0,
    imbalance_tol: float = 0.03,
    use_memo: bool = True,
) -> Partition:
    """Partition ``mesh`` balancing ``cell_weights`` instead of cell counts.

    Runs the multilevel pipeline on the dual graph with per-cell work as the
    vertex weights — the bisection, refinement, and balance machinery all
    operate on vertex weight, so the result balances *cost*, exactly what a
    repartition in response to an evolving workload needs.

    Results are memoized in-process by content (mesh connectivity, weights,
    rank count, seed, tolerance); pass ``use_memo=False`` to force a
    recomputation.
    """
    cell_weights = as_int_array(cell_weights, "cell_weights")
    if cell_weights.shape != (mesh.num_cells,):
        raise ValueError("cell_weights must have one entry per cell")
    if np.any(cell_weights < 1):
        raise ValueError("cell_weights must be positive")
    if use_memo:
        key = _repartition_key(
            mesh, cell_weights, num_ranks, faces, seed, imbalance_tol
        )
        cached = _REPARTITION_MEMO.get(key)
        if cached is not None:
            _REPARTITION_MEMO.move_to_end(key)
            return Partition(
                num_ranks=num_ranks,
                cell_rank=cached.copy(),
                method="multilevel-weighted",
            )
    if faces is None:
        faces = build_face_table(mesh)
    graph = dual_graph_of_mesh(mesh, faces)
    graph = CSRGraph(
        indptr=graph.indptr,
        indices=graph.indices,
        eweights=graph.eweights,
        vweights=cell_weights,
    )
    labels = multilevel_partition_graph(
        graph, num_ranks, seed=seed, imbalance_tol=imbalance_tol
    )
    if use_memo:
        _REPARTITION_MEMO[key] = labels.copy()
        while len(_REPARTITION_MEMO) > _REPARTITION_MEMO_MAX:
            _REPARTITION_MEMO.popitem(last=False)
    return Partition(
        num_ranks=num_ranks, cell_rank=labels, method="multilevel-weighted"
    )


def migration_matrix(old: Partition, new: Partition) -> np.ndarray:
    """Cells moving between ranks: entry ``[a, b]`` counts cells that rank
    ``a`` owned under ``old`` and must ship to rank ``b`` under ``new``
    (the diagonal — cells that stay put — is zero)."""
    if old.num_cells != new.num_cells:
        raise ValueError("partitions cover different cell sets")
    if old.num_ranks != new.num_ranks:
        raise ValueError("partitions have different rank counts")
    r = old.num_ranks
    flows = np.bincount(
        old.cell_rank * np.int64(r) + new.cell_rank, minlength=r * r
    ).reshape(r, r)
    np.fill_diagonal(flows, 0)
    return flows


__all__ = [
    "RepartitionPolicy",
    "NeverPolicy",
    "EveryNPolicy",
    "ImbalanceThresholdPolicy",
    "parse_policy",
    "weighted_repartition",
    "clear_repartition_memo",
    "migration_matrix",
]
