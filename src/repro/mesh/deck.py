"""The paper's input decks: a layered cylinder of four materials.

Section 2.1 describes three deck sizes — small (3 200 cells), medium
(204 800), large (819 200) — each with a core of high-explosive gas, a layer
of aluminum, a layer of foam, and a second aluminum layer, with the global
material ratios of Table 2 (heterogeneous row): 39.1 % / 17.2 % / 20.3 % /
23.4 %.  The 2-D rectangle is rotated about its left (vertical) edge so the
domain is a cylinder with the HE gas at the centre, and a detonator sits on
the rotation axis slightly below centre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import QuadMesh, structured_quad_mesh
from repro.util import bincount_fixed

#: Material ids, in radial order from the axis outward.
HE_GAS = 0
ALUMINUM_INNER = 1
FOAM = 2
ALUMINUM_OUTER = 3

MATERIALS = (HE_GAS, ALUMINUM_INNER, FOAM, ALUMINUM_OUTER)
MATERIAL_NAMES = ("HE Gas", "Aluminum (Inner)", "Foam", "Aluminum (Outer)")
NUM_MATERIALS = len(MATERIALS)

#: Target global material fractions (Table 2, heterogeneous row).
TABLE2_HETEROGENEOUS = (0.391, 0.172, 0.203, 0.234)

#: Paper deck sizes (Section 2.1) → (nx, ny) with the 2:1 radial:axial aspect
#: used throughout; ``nx * ny`` reproduces the quoted cell counts exactly.
DECK_SIZES = {
    "small": (80, 40),  # 3 200 cells
    "medium": (640, 320),  # 204 800 cells
    "large": (1280, 640),  # 819 200 cells
}


@dataclass(frozen=True)
class InputDeck:
    """A mesh plus per-cell material assignment and detonator location.

    Attributes
    ----------
    name:
        Deck label (``small``/``medium``/``large`` or ``custom``).
    mesh:
        The underlying :class:`~repro.mesh.grid.QuadMesh`.
    cell_material:
        Material id per cell, shape ``(num_cells,)``.
    detonator_xy:
        Detonation initiation point (on the rotation axis, below centre).
    """

    name: str
    mesh: QuadMesh
    cell_material: np.ndarray
    detonator_xy: tuple[float, float]

    def __post_init__(self) -> None:
        mats = np.ascontiguousarray(self.cell_material, dtype=np.int64)
        object.__setattr__(self, "cell_material", mats)
        if mats.shape != (self.mesh.num_cells,):
            raise ValueError("cell_material must have one entry per cell")
        if mats.size and (mats.min() < 0 or mats.max() >= NUM_MATERIALS):
            raise ValueError(f"material ids must lie in [0, {NUM_MATERIALS})")

    @property
    def num_cells(self) -> int:
        """Number of cells in the deck."""
        return self.mesh.num_cells

    def material_counts(self) -> np.ndarray:
        """Cells per material, length :data:`NUM_MATERIALS`."""
        return bincount_fixed(self.cell_material, NUM_MATERIALS)


def _apportion_columns(nx: int, fractions) -> np.ndarray:
    """Split ``nx`` columns among materials by largest-remainder apportionment.

    Guarantees every material at least one column and that the counts sum to
    ``nx`` exactly.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if fractions.ndim != 1 or fractions.size == 0:
        raise ValueError("fractions must be a non-empty 1-D sequence")
    if np.any(fractions <= 0) or not np.isclose(fractions.sum(), 1.0, atol=1e-6):
        raise ValueError("fractions must be positive and sum to 1")
    if nx < fractions.size:
        raise ValueError(f"need at least {fractions.size} columns, got {nx}")
    exact = fractions * nx
    counts = np.floor(exact).astype(np.int64)
    counts = np.maximum(counts, 1)
    while counts.sum() > nx:  # floor+minimum may overshoot for tiny nx
        counts[np.argmax(counts)] -= 1
    remainders = exact - np.floor(exact)
    for _ in range(nx - int(counts.sum())):
        pick = int(np.argmax(remainders))
        counts[pick] += 1
        remainders[pick] = -1.0
    return counts


def build_deck(
    size: str | tuple[int, int],
    fractions=TABLE2_HETEROGENEOUS,
    width: float = 1.0,
    height: float = 2.0,
) -> InputDeck:
    """Construct one of the paper's layered-cylinder decks.

    Parameters
    ----------
    size:
        One of ``"small"``/``"medium"``/``"large"`` (Section 2.1 cell
        counts), or an explicit ``(nx, ny)`` pair for custom studies such as
        the 65 536-cell grid of Figure 2.
    fractions:
        Radial material fractions, defaulting to Table 2's heterogeneous row.
    width, height:
        Physical extents; ``x`` is the radial direction (axis at ``x = 0``).
    """
    if isinstance(size, str):
        if size not in DECK_SIZES:
            raise ValueError(f"unknown deck size {size!r}; options: {sorted(DECK_SIZES)}")
        nx, ny = DECK_SIZES[size]
        name = size
    else:
        nx, ny = int(size[0]), int(size[1])
        name = "custom"
    mesh = structured_quad_mesh(nx, ny, width=width, height=height)

    # Radial layering: columns [0, c0) are HE gas, then aluminum, foam,
    # aluminum, mirroring Figure 1.
    col_counts = _apportion_columns(nx, fractions)
    boundaries = np.concatenate([[0], np.cumsum(col_counts)])
    column = np.arange(mesh.num_cells) % nx
    cell_material = np.searchsorted(boundaries, column, side="right") - 1
    cell_material = np.clip(cell_material, 0, NUM_MATERIALS - 1).astype(np.int64)

    # Detonator on the rotation axis, slightly below centre (Section 2.1).
    detonator = (0.0, 0.45 * height)
    return InputDeck(
        name=name, mesh=mesh, cell_material=cell_material, detonator_xy=detonator
    )


def material_fractions(deck: InputDeck) -> np.ndarray:
    """Achieved global material fractions of ``deck`` (compare to Table 2)."""
    counts = deck.material_counts()
    return counts / counts.sum()
