"""Geometric quantities for quad meshes, including the paper's cylindrical
rotation.

Section 2.1: "The rectangular, 2-D spatial grid is rotated about a vertical
axis so that the domain becomes a cylinder" — cell *volumes* in the rotated
interpretation follow Pappus's centroid theorem (area × 2π × centroid
radius), which is what the hydro substrate uses for masses.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import QuadMesh


def _quad_vertex_coords(mesh: QuadMesh) -> tuple[np.ndarray, np.ndarray]:
    """Vertex coordinates per cell, shape ``(num_cells, 4)`` each."""
    return mesh.node_x[mesh.cell_nodes], mesh.node_y[mesh.cell_nodes]


def cell_areas(mesh: QuadMesh) -> np.ndarray:
    """Signed shoelace areas per cell (positive for counter-clockwise quads)."""
    x, y = _quad_vertex_coords(mesh)
    x_next = np.roll(x, -1, axis=1)
    y_next = np.roll(y, -1, axis=1)
    return 0.5 * np.sum(x * y_next - x_next * y, axis=1)


def cell_centroids(mesh: QuadMesh) -> np.ndarray:
    """Area centroids per cell, shape ``(num_cells, 2)``.

    Uses the polygon-centroid formula; degenerate (zero-area) quads fall back
    to the vertex average so downstream code never divides by zero.
    """
    x, y = _quad_vertex_coords(mesh)
    x_next = np.roll(x, -1, axis=1)
    y_next = np.roll(y, -1, axis=1)
    cross = x * y_next - x_next * y
    area = 0.5 * np.sum(cross, axis=1)
    cx = np.sum((x + x_next) * cross, axis=1)
    cy = np.sum((y + y_next) * cross, axis=1)
    out = np.empty((mesh.num_cells, 2))
    ok = np.abs(area) > 1e-300
    with np.errstate(invalid="ignore", divide="ignore"):
        out[:, 0] = np.where(ok, cx / (6.0 * area), x.mean(axis=1))
        out[:, 1] = np.where(ok, cy / (6.0 * area), y.mean(axis=1))
    return out


def cylindrical_volumes(mesh: QuadMesh) -> np.ndarray:
    """Cell volumes after rotating the planar mesh about the ``x = 0`` axis.

    By Pappus's theorem the solid of revolution swept by a planar region of
    area ``A`` whose centroid sits at radius ``r`` has volume ``2·π·r·A``.
    Cells touching the axis have small but positive volume as long as their
    centroid radius is positive.
    """
    areas = np.abs(cell_areas(mesh))
    radii = cell_centroids(mesh)[:, 0]
    if np.any(radii < -1e-12):
        raise ValueError("mesh crosses the rotation axis (negative centroid radius)")
    return 2.0 * np.pi * np.clip(radii, 0.0, None) * areas


def mesh_extents(mesh: QuadMesh) -> tuple[float, float, float, float]:
    """Return the bounding box ``(xmin, xmax, ymin, ymax)``."""
    return (
        float(mesh.node_x.min()),
        float(mesh.node_x.max()),
        float(mesh.node_y.min()),
        float(mesh.node_y.max()),
    )
