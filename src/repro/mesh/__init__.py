"""Spatial-grid substrate: structured quad meshes, Krak input decks,
connectivity, cylindrical geometry, and partition-boundary censuses.

The paper's input is a rectangular 2-D grid of quadrilateral *cells*, each
bounded by four *faces* joining *nodes*, with exactly one material per cell
(Section 2).  The grid is conceptually rotated about a vertical axis to form
a cylinder; :mod:`repro.mesh.geometry` supplies the rotation volumes.
"""

from repro.mesh.grid import QuadMesh, structured_quad_mesh
from repro.mesh.connectivity import (
    FaceTable,
    build_face_table,
    build_dual_graph,
    node_cell_incidence,
)
from repro.mesh.geometry import (
    cell_areas,
    cell_centroids,
    cylindrical_volumes,
    mesh_extents,
)
from repro.mesh.deck import (
    MATERIALS,
    MATERIAL_NAMES,
    NUM_MATERIALS,
    HE_GAS,
    ALUMINUM_INNER,
    FOAM,
    ALUMINUM_OUTER,
    DECK_SIZES,
    InputDeck,
    build_deck,
    material_fractions,
)
from repro.mesh.ghost import (
    BoundaryCensus,
    PairBoundary,
    boundary_census,
    node_owners,
)

__all__ = [
    "QuadMesh",
    "structured_quad_mesh",
    "FaceTable",
    "build_face_table",
    "build_dual_graph",
    "node_cell_incidence",
    "cell_areas",
    "cell_centroids",
    "cylindrical_volumes",
    "mesh_extents",
    "MATERIALS",
    "MATERIAL_NAMES",
    "NUM_MATERIALS",
    "HE_GAS",
    "ALUMINUM_INNER",
    "FOAM",
    "ALUMINUM_OUTER",
    "DECK_SIZES",
    "InputDeck",
    "build_deck",
    "material_fractions",
    "BoundaryCensus",
    "PairBoundary",
    "boundary_census",
    "node_owners",
]
