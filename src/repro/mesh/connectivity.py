"""Face tables, dual graphs, and node incidence for quad meshes.

Everything here is vectorised: face extraction for the 819 200-cell "large"
deck must run in well under a second, because the benchmark harness rebuilds
meshes for every table in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.grid import QuadMesh

#: Local edge order within a quad: (node a slot, node b slot) per side,
#: counter-clockwise starting from the bottom edge.
_QUAD_EDGES = np.array([[0, 1], [1, 2], [2, 3], [3, 0]], dtype=np.int64)


@dataclass(frozen=True)
class FaceTable:
    """Unique faces of a quad mesh.

    Attributes
    ----------
    face_nodes:
        Node pair per face, shape ``(num_faces, 2)``, with
        ``face_nodes[:, 0] < face_nodes[:, 1]`` (canonical order).
    face_cells:
        The one or two cells incident to each face, shape ``(num_faces, 2)``;
        exterior-boundary faces carry ``-1`` in column 1.  Column 0 is always
        the lower cell id.
    cell_faces:
        Face ids per cell side, shape ``(num_cells, 4)``, sides ordered as
        bottom/right/top/left of the counter-clockwise node loop.
    """

    face_nodes: np.ndarray
    face_cells: np.ndarray
    cell_faces: np.ndarray

    @property
    def num_faces(self) -> int:
        """Total number of unique faces."""
        return int(self.face_nodes.shape[0])

    def interior_mask(self) -> np.ndarray:
        """Boolean mask of faces shared by two cells."""
        return self.face_cells[:, 1] >= 0

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of exterior-boundary faces."""
        return self.face_cells[:, 1] < 0


def build_face_table(mesh: QuadMesh) -> FaceTable:
    """Extract the unique faces of ``mesh`` with cell incidence.

    Faces are deduplicated by their canonical (sorted) node pair; each
    interior face is incident to exactly two cells.  A face shared by more
    than two cells indicates a broken mesh and raises ``ValueError``.
    """
    ncells = mesh.num_cells
    # All 4*ncells directed edges, then canonicalise the node order.
    a = mesh.cell_nodes[:, _QUAD_EDGES[:, 0]]  # (ncells, 4)
    b = mesh.cell_nodes[:, _QUAD_EDGES[:, 1]]
    lo = np.minimum(a, b).ravel()
    hi = np.maximum(a, b).ravel()

    # Encode each edge as a single integer key for sorting/uniquing.
    key = lo * np.int64(mesh.num_nodes) + hi
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    unique_key, first_idx, counts = np.unique(
        sorted_key, return_index=True, return_counts=True
    )
    if counts.size and counts.max() > 2:
        raise ValueError("non-manifold mesh: a face is shared by more than two cells")

    num_faces = unique_key.shape[0]
    face_nodes = np.column_stack(
        [unique_key // mesh.num_nodes, unique_key % mesh.num_nodes]
    )

    # Map each of the 4*ncells edge slots to its face id.
    face_of_slot = np.empty(4 * ncells, dtype=np.int64)
    face_ids_sorted = np.repeat(np.arange(num_faces), counts)
    face_of_slot[order] = face_ids_sorted
    cell_faces = face_of_slot.reshape(ncells, 4)

    # Cell incidence: for each face, the owning cell(s).
    owner_cell_sorted = order // 4  # cell id of each sorted edge slot
    face_cells = np.full((num_faces, 2), -1, dtype=np.int64)
    face_cells[:, 0] = owner_cell_sorted[first_idx]
    second = counts == 2
    face_cells[second, 1] = owner_cell_sorted[first_idx[second] + 1]
    # Canonical order: lower cell id first (cells are appended in sorted edge
    # order, which is not cell order).
    swap = second & (face_cells[:, 1] < face_cells[:, 0])
    face_cells[swap] = face_cells[swap][:, ::-1]

    return FaceTable(face_nodes=face_nodes, face_cells=face_cells, cell_faces=cell_faces)


def build_dual_graph(faces: FaceTable, num_cells: int) -> tuple[np.ndarray, np.ndarray]:
    """Build the cell-adjacency (dual) graph in CSR form.

    Returns
    -------
    indptr, indices:
        CSR row pointers (``num_cells + 1``) and column indices; the graph is
        symmetric and has one edge per interior face.
    """
    interior = faces.interior_mask()
    u = faces.face_cells[interior, 0]
    v = faces.face_cells[interior, 1]
    src = np.concatenate([u, v])
    dst = np.concatenate([v, u])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(num_cells + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst.astype(np.int64)


def node_cell_incidence(mesh: QuadMesh) -> tuple[np.ndarray, np.ndarray]:
    """Build the node→cell incidence in CSR form.

    Returns ``(indptr, cells)`` where ``cells[indptr[n]:indptr[n+1]]`` lists
    the cells touching node ``n``.
    """
    nodes = mesh.cell_nodes.ravel()
    cells = np.repeat(np.arange(mesh.num_cells), 4)
    order = np.argsort(nodes, kind="stable")
    nodes, cells = nodes[order], cells[order]
    indptr = np.zeros(mesh.num_nodes + 1, dtype=np.int64)
    np.add.at(indptr, nodes + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cells.astype(np.int64)
