"""Structured quadrilateral mesh generation.

Krak's decks in the paper are logically-rectangular 2-D grids.  We generate
them as fully general unstructured quad meshes (explicit node coordinates and
cell→node connectivity) so the partitioner, hydro solver, and performance
model never rely on structure — exactly like the real application, whose
Metis partitions destroy any structure anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import as_float_array, as_int_array, check_positive


@dataclass(frozen=True)
class QuadMesh:
    """An unstructured mesh of quadrilateral cells.

    Attributes
    ----------
    node_x, node_y:
        Node coordinates, shape ``(num_nodes,)``.
    cell_nodes:
        Counter-clockwise node ids per cell, shape ``(num_cells, 4)``.
    nx, ny:
        Logical extents when the mesh was generated structured; ``0`` for a
        genuinely unstructured mesh.  Only used for fast-path partitioners.
    """

    node_x: np.ndarray
    node_y: np.ndarray
    cell_nodes: np.ndarray
    nx: int = 0
    ny: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_x", as_float_array(self.node_x, "node_x"))
        object.__setattr__(self, "node_y", as_float_array(self.node_y, "node_y"))
        object.__setattr__(
            self, "cell_nodes", as_int_array(self.cell_nodes, "cell_nodes")
        )
        if self.node_x.shape != self.node_y.shape or self.node_x.ndim != 1:
            raise ValueError("node_x and node_y must be 1-D arrays of equal length")
        if self.cell_nodes.ndim != 2 or self.cell_nodes.shape[1] != 4:
            raise ValueError("cell_nodes must have shape (num_cells, 4)")
        if self.cell_nodes.size:
            lo = int(self.cell_nodes.min())
            hi = int(self.cell_nodes.max())
            if lo < 0 or hi >= self.num_nodes:
                raise ValueError(
                    f"cell_nodes references nodes outside [0, {self.num_nodes})"
                )

    @property
    def num_nodes(self) -> int:
        """Number of mesh nodes."""
        return int(self.node_x.shape[0])

    @property
    def num_cells(self) -> int:
        """Number of quadrilateral cells."""
        return int(self.cell_nodes.shape[0])

    @property
    def is_structured(self) -> bool:
        """Whether this mesh retains its logically-rectangular metadata."""
        return self.nx > 0 and self.ny > 0

    def node_coords(self) -> np.ndarray:
        """Return node coordinates stacked as shape ``(num_nodes, 2)``."""
        return np.column_stack([self.node_x, self.node_y])

    def cell_ij(self) -> tuple[np.ndarray, np.ndarray]:
        """Return structured ``(i, j)`` indices per cell (structured meshes only)."""
        if not self.is_structured:
            raise ValueError("mesh does not carry structured metadata")
        cells = np.arange(self.num_cells)
        return cells % self.nx, cells // self.nx


def structured_quad_mesh(
    nx: int,
    ny: int,
    width: float = 1.0,
    height: float = 1.0,
    x0: float = 0.0,
    y0: float = 0.0,
) -> QuadMesh:
    """Build a uniform ``nx`` × ``ny`` structured quad mesh.

    Cell ``(i, j)`` (column ``i`` counted from the rotation axis at
    ``x = x0``, row ``j`` from the bottom) has id ``j * nx + i``; node
    ``(i, j)`` has id ``j * (nx + 1) + i``.  Cells are numbered so that the
    x direction is *radial* in the paper's cylindrical interpretation.
    """
    check_positive(nx, "nx")
    check_positive(ny, "ny")
    check_positive(width, "width")
    check_positive(height, "height")

    xs = np.linspace(x0, x0 + width, nx + 1)
    ys = np.linspace(y0, y0 + height, ny + 1)
    grid_x, grid_y = np.meshgrid(xs, ys)  # shape (ny+1, nx+1), row-major by j
    node_x = grid_x.ravel()
    node_y = grid_y.ravel()

    i = np.tile(np.arange(nx), ny)
    j = np.repeat(np.arange(ny), nx)
    sw = j * (nx + 1) + i
    se = sw + 1
    ne = se + (nx + 1)
    nw = sw + (nx + 1)
    cell_nodes = np.column_stack([sw, se, ne, nw])

    return QuadMesh(node_x=node_x, node_y=node_y, cell_nodes=cell_nodes, nx=nx, ny=ny)
