"""Partition-boundary census: shared faces, ghost nodes, and ownership.

Section 2 of the paper: "ghost nodes" are the nodes whose faces lie on
boundaries between processors; every ghost node is *local* to (owned by)
exactly one processor and *remote* to all others that share it.  Boundary-
exchange message sizes depend on the number of shared faces per material and
on ghost nodes touching more than one material (Section 4.1); ghost-node
update sizes depend on local/remote ownership per processor pair
(Section 4.2).  This module computes all of that exactly for an arbitrary
partition — it is the ground truth the mesh-specific model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.connectivity import FaceTable
from repro.mesh.deck import NUM_MATERIALS
from repro.mesh.grid import QuadMesh
from repro.util import as_int_array, bincount_fixed


@dataclass(frozen=True)
class PairBoundary:
    """Census of the boundary between one pair of ranks (``rank_a < rank_b``).

    Attributes
    ----------
    face_ids:
        Mesh face ids along the shared boundary.
    faces_by_material:
        Shape ``(2, NUM_MATERIALS)``: row 0 counts boundary faces by the
        material of the ``rank_a``-side cell, row 1 by the ``rank_b`` side.
    ghost_nodes:
        Unique node ids on the shared boundary.
    owned_by_a, owned_by_b, owned_by_other:
        How many ghost nodes each side owns (ownership = minimum incident
        rank over the whole mesh, so corner nodes may belong to a third rank).
    multi_material_nodes:
        Shape ``(2,)``: ghost nodes incident to faces of more than one
        material on the a-side / b-side respectively (these enlarge the first
        two boundary-exchange messages by 12 bytes each, Section 4.1).
    """

    rank_a: int
    rank_b: int
    face_ids: np.ndarray
    faces_by_material: np.ndarray
    ghost_nodes: np.ndarray
    owned_by_a: int
    owned_by_b: int
    owned_by_other: int
    multi_material_nodes: np.ndarray

    @property
    def num_faces(self) -> int:
        """Total shared faces, independent of material."""
        return int(self.face_ids.shape[0])

    @property
    def num_ghost_nodes(self) -> int:
        """Total ghost nodes on this pair boundary."""
        return int(self.ghost_nodes.shape[0])

    def side_index(self, rank: int) -> int:
        """Return 0/1 depending on whether ``rank`` is ``rank_a``/``rank_b``."""
        if rank == self.rank_a:
            return 0
        if rank == self.rank_b:
            return 1
        raise ValueError(f"rank {rank} is not part of pair ({self.rank_a}, {self.rank_b})")

    def local_ghost_count(self, rank: int) -> int:
        """Ghost nodes on this boundary owned by ``rank``."""
        return self.owned_by_a if self.side_index(rank) == 0 else self.owned_by_b

    def remote_ghost_count(self, rank: int) -> int:
        """Ghost nodes on this boundary *not* owned by ``rank``."""
        return self.num_ghost_nodes - self.local_ghost_count(rank)


@dataclass(frozen=True)
class BoundaryCensus:
    """All pair boundaries of a partition, plus per-rank lookup helpers."""

    num_ranks: int
    pairs: dict
    #: node id → owning rank for every mesh node (not just ghosts).
    owners: np.ndarray

    def neighbors(self, rank: int) -> list:
        """Sorted neighbour ranks of ``rank``."""
        out = []
        for (a, b) in self.pairs:
            if a == rank:
                out.append(b)
            elif b == rank:
                out.append(a)
        return sorted(out)

    def pair(self, rank_a: int, rank_b: int) -> PairBoundary:
        """The :class:`PairBoundary` between two ranks (order-insensitive)."""
        key = (min(rank_a, rank_b), max(rank_a, rank_b))
        return self.pairs[key]

    def total_boundary_faces(self, rank: int) -> int:
        """Sum of shared faces over all of ``rank``'s neighbours."""
        return sum(self.pair(rank, n).num_faces for n in self.neighbors(rank))

    def neighbor_count_stats(self) -> tuple[float, int, int]:
        """Return (mean, min, max) neighbour counts over ranks with cells."""
        counts = np.zeros(self.num_ranks, dtype=np.int64)
        for (a, b) in self.pairs:
            counts[a] += 1
            counts[b] += 1
        active = counts[counts > 0]
        if active.size == 0:
            return (0.0, 0, 0)
        return (float(active.mean()), int(active.min()), int(active.max()))


def node_owners(mesh: QuadMesh, cell_rank: np.ndarray) -> np.ndarray:
    """Assign every node to the minimum rank among its incident cells.

    This mirrors the paper's rule that each ghost node is "local" to exactly
    one processor; interior nodes trivially belong to their only rank.
    """
    cell_rank = as_int_array(cell_rank, "cell_rank")
    if cell_rank.shape != (mesh.num_cells,):
        raise ValueError("cell_rank must have one entry per cell")
    owners = np.full(mesh.num_nodes, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(owners, mesh.cell_nodes.ravel(), np.repeat(cell_rank, 4))
    if np.any(owners == np.iinfo(np.int64).max):
        raise ValueError("mesh has nodes not referenced by any cell")
    return owners


def boundary_census(
    mesh: QuadMesh,
    faces: FaceTable,
    cell_material: np.ndarray,
    cell_rank: np.ndarray,
    num_ranks: int,
) -> BoundaryCensus:
    """Compute the full partition-boundary census.

    Parameters
    ----------
    mesh, faces:
        The mesh and its face table.
    cell_material:
        Material id per cell.
    cell_rank:
        Partition assignment per cell, values in ``[0, num_ranks)``.
    num_ranks:
        Number of ranks in the partition.
    """
    cell_material = as_int_array(cell_material, "cell_material")
    cell_rank = as_int_array(cell_rank, "cell_rank")
    if cell_rank.size and (cell_rank.min() < 0 or cell_rank.max() >= num_ranks):
        raise ValueError(f"cell_rank values must lie in [0, {num_ranks})")

    owners = node_owners(mesh, cell_rank)

    interior = faces.interior_mask()
    c0 = faces.face_cells[interior, 0]
    c1 = faces.face_cells[interior, 1]
    r0 = cell_rank[c0]
    r1 = cell_rank[c1]
    cut = r0 != r1
    face_ids_all = np.flatnonzero(interior)[cut]
    c0, c1, r0, r1 = c0[cut], c1[cut], r0[cut], r1[cut]

    # Canonicalise so side a is the lower rank.
    swap = r0 > r1
    ca = np.where(swap, c1, c0)
    cb = np.where(swap, c0, c1)
    ra = np.where(swap, r1, r0)
    rb = np.where(swap, r0, r1)
    mat_a = cell_material[ca]
    mat_b = cell_material[cb]

    pair_key = ra * np.int64(num_ranks) + rb
    order = np.argsort(pair_key, kind="stable")
    pair_key = pair_key[order]
    face_ids_all = face_ids_all[order]
    mat_a, mat_b = mat_a[order], mat_b[order]
    ra, rb = ra[order], rb[order]

    pairs: dict = {}
    unique_keys, starts = np.unique(pair_key, return_index=True)
    bounds = np.append(starts, pair_key.shape[0])
    for k, key in enumerate(unique_keys):
        s, e = bounds[k], bounds[k + 1]
        a = int(key // num_ranks)
        b = int(key % num_ranks)
        fids = face_ids_all[s:e]
        fm = np.stack(
            [
                bincount_fixed(mat_a[s:e], NUM_MATERIALS),
                bincount_fixed(mat_b[s:e], NUM_MATERIALS),
            ]
        )
        fnodes = faces.face_nodes[fids]  # (nf, 2)
        ghost = np.unique(fnodes)
        node_owner = owners[ghost]
        owned_a = int(np.count_nonzero(node_owner == a))
        owned_b = int(np.count_nonzero(node_owner == b))
        owned_other = int(ghost.shape[0] - owned_a - owned_b)

        multi = np.zeros(2, dtype=np.int64)
        for side, side_mat in enumerate((mat_a[s:e], mat_b[s:e])):
            # A ghost node "touches more than one material" if its incident
            # boundary faces (within this pair) carry differing materials.
            multi[side] = _count_multi_material_nodes(fnodes, side_mat)

        pairs[(a, b)] = PairBoundary(
            rank_a=a,
            rank_b=b,
            face_ids=fids,
            faces_by_material=fm,
            ghost_nodes=ghost,
            owned_by_a=owned_a,
            owned_by_b=owned_b,
            owned_by_other=owned_other,
            multi_material_nodes=multi,
        )

    return BoundaryCensus(num_ranks=num_ranks, pairs=pairs, owners=owners)


def _count_multi_material_nodes(face_nodes: np.ndarray, face_material: np.ndarray) -> int:
    """Count nodes incident to boundary faces of more than one material."""
    nodes = face_nodes.ravel()
    mats = np.repeat(face_material, 2)
    order = np.argsort(nodes, kind="stable")
    nodes, mats = nodes[order], mats[order]
    count = 0
    i = 0
    n = nodes.shape[0]
    while i < n:
        j = i + 1
        first = mats[i]
        differs = False
        while j < n and nodes[j] == nodes[i]:
            if mats[j] != first:
                differs = True
            j += 1
        if differs:
            count += 1
        i = j
    return count
