"""Production perturbation machinery: seeded streams and machine transforms.

This is the *optimized* implementation the engine runs — cached per-rank
noise vectors, a vectorised network transform — and it is deliberately
mirrored by a naive twin (``OraclePerturbation`` in
:mod:`repro.verify.oracle`) so the differential fuzzer can catch bugs in
either copy.  Optimisations here must never change semantics; the oracle
twin re-derives every draw from the ``SeedSequence`` contract per call.

Seeding contract (pinned by ``tests/test_property_perturb.py`` goldens):
every draw comes from ``Generator(PCG64(SeedSequence((seed, stream, rank,
iteration))))`` — stream 0 is per-rank compute noise, stream 1 the global
churn decision (rank field 0).  No global ``np.random`` state is ever
touched, so importing or running anything else cannot perturb a draw, and
perturbing rank *k*'s stream cannot move rank *j*'s.

Per-(rank, iteration) draw order on stream 0 is fixed: one uniform (the
straggler event — always drawn, even at ``straggler_prob == 0``, to keep
stream alignment across specs) then ``NUM_PHASES`` exponentials (the
per-phase noise).  Scale factors are ``1 + compute_noise · Exp(1)``, times
``straggler_factor`` when the uniform fires.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.machine.cluster import ClusterConfig
from repro.machine.costdb import NUM_PHASES
from repro.machine.network import NetworkModel
from repro.perturb.spec import PerturbSpec

__all__ = [
    "FAILURE_PHASE",
    "Perturbation",
    "degrade_cluster",
    "degrade_network",
    "perturb_rng",
]

#: Trace phase for checkpoint/restart time — one past the repartition phase
#: (REPARTITION_PHASE == NUM_PHASES), so a failure-carrying trace has
#: ``FAILURE_PHASE + 1`` phases and clean traces keep their original width.
FAILURE_PHASE = NUM_PHASES + 1

#: Stream ids in the ``(seed, stream, rank, iteration)`` key.
_STREAM_COMPUTE = 0
_STREAM_CHURN = 1


def perturb_rng(
    seed: int, stream: int, rank: int, iteration: int
) -> np.random.Generator:
    """The one-and-only RNG constructor for perturbation draws.

    Keyed streams (not a shared sequential generator) are what make draws
    independent of evaluation order: a sweep worker pricing rank 5 first
    gets bitwise the same factors as the scalar loop pricing rank 0 first.
    """
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence((seed, stream, rank, iteration)))
    )


class Perturbation:
    """A built perturbation: what the rank programs and driver consume.

    Separates the declarative :class:`~repro.perturb.spec.PerturbSpec` from
    run-shaped state (cached factor vectors, the resolved failure event).
    One instance is shared by every rank program of a run, exactly like the
    :class:`~repro.hydro.dynamic.DynamicController`.
    """

    def __init__(self, spec: PerturbSpec, num_ranks: int) -> None:
        if spec.fail_rank is not None and spec.fail_rank >= num_ranks:
            raise ValueError(
                f"fail_rank {spec.fail_rank} out of range for {num_ranks} ranks"
            )
        self.spec = spec
        self.num_ranks = num_ranks
        self._factors: dict[tuple[int, int], np.ndarray] = {}
        self._churn: dict[int, bool] = {}

    # ----------------------------------------------------------- compute

    def compute_factors(self, rank: int, iteration: int) -> np.ndarray | None:
        """Per-phase compute scale factors for one (rank, iteration).

        ``None`` when the noise stream is inactive — the caller's charge
        path must then be *untouched* (not multiplied by ones), which is
        what keeps zero-noise runs bitwise-identical to clean ones.
        """
        spec = self.spec
        if not spec.has_compute_noise:
            return None
        key = (rank, iteration)
        cached = self._factors.get(key)
        if cached is None:
            rng = perturb_rng(spec.seed, _STREAM_COMPUTE, rank, iteration)
            straggle = rng.random() < spec.straggler_prob
            factors = 1.0 + spec.compute_noise * rng.standard_exponential(
                NUM_PHASES
            )
            if straggle:
                factors *= spec.straggler_factor
            self._factors[key] = cached = factors
        return cached

    # ----------------------------------------------------------- failure

    def failure_event(self, iteration: int) -> tuple[int, float] | None:
        """``(rank, restart_seconds)`` when a failure fires this iteration."""
        spec = self.spec
        if spec.fail_rank is not None and iteration == spec.fail_iteration:
            return (spec.fail_rank, spec.restart_seconds)
        return None

    # ------------------------------------------------------------- churn

    def churn_at(self, iteration: int) -> bool:
        """Whether node churn forces a repartition at ``iteration``.

        One global draw per iteration (rank field 0: the event is a machine
        event, not a rank event).  Iteration 0 never churns — the initial
        partition has done no work yet.
        """
        spec = self.spec
        if not spec.has_churn or iteration == 0:
            return False
        cached = self._churn.get(iteration)
        if cached is None:
            rng = perturb_rng(spec.seed, _STREAM_CHURN, 0, iteration)
            cached = bool(rng.random() < spec.churn_prob)
            self._churn[iteration] = cached
        return cached


# ----------------------------------------------------------------- machine


def degrade_network(network: NetworkModel, multiplier: float) -> NetworkModel:
    """A copy of ``network`` with latency and per-byte cost scaled.

    Scaling the *parameter arrays* (not the priced result) keeps the
    piecewise Equation-4 form intact, so every consumer — scalar pricing,
    the batch kernel's ``send_times_many``, the analytic collectives —
    prices through the same degraded coefficients bitwise.
    """
    return NetworkModel(
        breakpoints=network.breakpoints,
        latency=network.latency * multiplier,
        per_byte=network.per_byte * multiplier,
        name=f"{network.name}*{multiplier:g}",
    )


def degrade_cluster(cluster: ClusterConfig, spec: PerturbSpec) -> ClusterConfig:
    """Apply ``spec.link_degrade`` to the cluster's inter-node fabric.

    Flat machines degrade their one network; SMP machines degrade only the
    ``hierarchy.inter`` component (contention lives on the fabric, not the
    shared-memory bus) plus the matching flat ``network`` the analytic
    models price through.  Host overheads are never scaled — they are CPU
    time, not wire time.
    """
    if spec.link_degrade == 0.0:
        return cluster
    multiplier = 1.0 + spec.link_degrade
    degraded = degrade_network(cluster.network, multiplier)
    hierarchy = cluster.hierarchy
    if hierarchy is not None:
        hierarchy = dataclasses.replace(
            hierarchy, inter=degrade_network(hierarchy.inter, multiplier)
        )
    return dataclasses.replace(
        cluster,
        network=degraded,
        hierarchy=hierarchy,
        name=f"{cluster.name}+degrade{spec.link_degrade:g}",
    )
