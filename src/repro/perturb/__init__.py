"""Seeded, injectable perturbations: faults, stragglers, churn.

Public surface:

* :class:`PerturbSpec` — the declarative, JSON-round-tripping axis.
* :func:`parse_perturb` — CLI token → spec (``"none"`` → ``None``).
* :class:`Perturbation` — the built, run-shaped production machinery.
* :func:`degrade_cluster` / :func:`degrade_network` — machine transforms.
* :data:`FAILURE_PHASE` — the checkpoint/restart trace phase.

Semantics, the seeding contract, and the straggler-vs-repartition cookbook
live in ``docs/perturbations.md``.
"""

from repro.perturb.model import (
    FAILURE_PHASE,
    Perturbation,
    degrade_cluster,
    degrade_network,
    perturb_rng,
)
from repro.perturb.spec import PerturbSpec, parse_perturb

__all__ = [
    "FAILURE_PHASE",
    "Perturbation",
    "PerturbSpec",
    "degrade_cluster",
    "degrade_network",
    "parse_perturb",
    "perturb_rng",
]
