"""Declarative perturbation axis: what noise to inject, serialisably.

A :class:`PerturbSpec` names everything a noisy run differs by from a clean
one — per-rank OS-noise/straggler amplitudes, link degradation, a rank
failure with its checkpoint/restart cost, and node-churn-forced
repartitioning — without touching *how* any of it is computed (that lives
in :mod:`repro.perturb.model` for production and, independently, in
:mod:`repro.verify.oracle` for the differential twin).

The spec is a first-class sweep axis: it round-trips through JSON, hangs
off :class:`~repro.core.request.PredictionRequest` and
:class:`~repro.analysis.runner.SweepSpec`, and is *content-hash neutral
when absent* — an unperturbed request hashes to exactly the key it had
before this field existed (see ``_HASH_OPTIONAL_FIELDS_`` in
:mod:`repro.util.artifacts`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["PerturbSpec", "parse_perturb"]


@dataclass(frozen=True)
class PerturbSpec:
    """Everything a perturbed run differs by from a clean one.

    Attributes
    ----------
    seed:
        Root of every perturbation RNG stream.  Draws are keyed
        ``(seed, stream, rank, iteration)`` through ``SeedSequence`` so
        no two ranks (or iterations) ever share a stream — the contract
        pinned by ``tests/test_property_perturb.py``.
    compute_noise:
        OS-noise amplitude: each phase's compute time is scaled by
        ``1 + compute_noise · Exp(1)`` (independent per rank, iteration,
        and phase).  ``0`` disables the noise stream entirely.
    straggler_prob, straggler_factor:
        With probability ``straggler_prob`` per (rank, iteration), every
        phase of that rank's iteration is further scaled by
        ``straggler_factor`` — a transient slow node.
    link_degrade:
        Contention/degradation multiplier on inter-node (or flat-network)
        message pricing: latency and per-byte cost are scaled by
        ``1 + link_degrade``.  Intra-node links and host overheads are
        untouched.
    fail_rank, fail_iteration, restart_seconds:
        When ``fail_rank`` is set, that rank fails at the start of
        iteration ``fail_iteration`` and pays ``restart_seconds`` of
        checkpoint/restart compute inside two global barriers, charged to
        the dedicated failure trace phase (every other rank pays the
        synchronisation stall).
    churn_prob:
        Per-iteration probability (one global draw, not per rank) that a
        node join/leave forces a repartition regardless of the configured
        policy.  Requires a dynamic workload (the repartition machinery).
    """

    seed: int = 0
    compute_noise: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 3.0
    link_degrade: float = 0.0
    fail_rank: int | None = None
    fail_iteration: int = 1
    restart_seconds: float = 0.0
    churn_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_noise < 0:
            raise ValueError("compute_noise must be non-negative")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.link_degrade < 0:
            raise ValueError("link_degrade must be non-negative")
        if self.fail_rank is not None and self.fail_rank < 0:
            raise ValueError("fail_rank must be a rank id")
        if self.fail_iteration < 0:
            raise ValueError("fail_iteration must be non-negative")
        if self.restart_seconds < 0:
            raise ValueError("restart_seconds must be non-negative")
        if not 0.0 <= self.churn_prob <= 1.0:
            raise ValueError("churn_prob must be in [0, 1]")

    # --------------------------------------------------------------- gates

    @property
    def has_compute_noise(self) -> bool:
        """Whether the per-rank noise stream is active at all."""
        return self.compute_noise > 0.0 or self.straggler_prob > 0.0

    @property
    def has_failure(self) -> bool:
        """Whether a rank failure is configured."""
        return self.fail_rank is not None

    @property
    def has_churn(self) -> bool:
        """Whether churn-forced repartitioning is active."""
        return self.churn_prob > 0.0

    @property
    def is_null(self) -> bool:
        """True when this spec perturbs nothing at all.

        A null spec must produce runs bitwise-identical to ``perturb=None``
        — including trace shape — which is what lets ``--perturb none`` and
        an all-defaults spec share goldens with clean runs.
        """
        return not (
            self.has_compute_noise
            or self.has_failure
            or self.has_churn
            or self.link_degrade != 0.0
        )

    # --------------------------------------------------------------- wire

    def to_dict(self) -> dict:
        """JSON-ready payload (all fields, explicit)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PerturbSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown PerturbSpec keys: {sorted(unknown)}")
        return cls(**payload)

    @property
    def label(self) -> str:
        """Compact human tag, also the CLI token that re-parses to this spec."""
        if self.is_null:
            return "none"
        parts = []
        if self.compute_noise > 0:
            parts.append(f"noise:{self.compute_noise:g}")
        if self.straggler_prob > 0:
            parts.append(
                f"straggler:{self.straggler_prob:g}x{self.straggler_factor:g}"
            )
        if self.link_degrade != 0:
            parts.append(f"degrade:{self.link_degrade:g}")
        if self.fail_rank is not None:
            parts.append(
                f"fail:{self.fail_rank}@{self.fail_iteration}"
                f"x{self.restart_seconds:g}"
            )
        if self.churn_prob > 0:
            parts.append(f"churn:{self.churn_prob:g}")
        if self.seed != 0:
            parts.append(f"seed:{self.seed}")
        return "+".join(parts)


def parse_perturb(token: str) -> PerturbSpec | None:
    """Parse one CLI perturbation token into a spec (``none`` → ``None``).

    Grammar: ``+``-joined clauses, e.g.
    ``noise:0.1+straggler:0.05x8+degrade:0.5+fail:2@1x0.01+churn:0.2+seed:7``.

    >>> parse_perturb("none") is None
    True
    >>> parse_perturb("noise:0.1+seed:3").compute_noise
    0.1
    >>> parse_perturb("straggler:0.2x8").straggler_factor
    8.0
    """
    token = token.strip()
    if token in ("", "none"):
        return None
    fields: dict = {}
    for clause in token.split("+"):
        key, sep, value = clause.partition(":")
        if not sep:
            raise ValueError(f"malformed perturb clause {clause!r} in {token!r}")
        try:
            if key == "noise":
                fields["compute_noise"] = float(value)
            elif key == "straggler":
                prob, sep, factor = value.partition("x")
                fields["straggler_prob"] = float(prob)
                if sep:
                    fields["straggler_factor"] = float(factor)
            elif key == "degrade":
                fields["link_degrade"] = float(value)
            elif key == "fail":
                rank, sep, rest = value.partition("@")
                fields["fail_rank"] = int(rank)
                if sep:
                    iteration, sep, seconds = rest.partition("x")
                    fields["fail_iteration"] = int(iteration)
                    if sep:
                        fields["restart_seconds"] = float(seconds)
            elif key == "churn":
                fields["churn_prob"] = float(value)
            elif key == "seed":
                fields["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown perturb clause {key!r} in {token!r}; expected "
                    "noise|straggler|degrade|fail|churn|seed"
                )
        except ValueError as exc:
            if "perturb clause" in str(exc):
                raise
            raise ValueError(
                f"malformed perturb clause {clause!r} in {token!r}"
            ) from exc
    spec = PerturbSpec(**fields)
    return None if spec.is_null else spec
