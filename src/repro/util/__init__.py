"""Shared low-level utilities for the Krak performance-model reproduction.

This subpackage deliberately has no dependencies on the rest of
:mod:`repro`; every other subpackage may depend on it.
"""

from repro.util.artifacts import cache_root, stable_hash
from repro.util.rng import seeded_rng, spawn_rng
from repro.util.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    bytes_to_mib,
    format_bytes,
    format_time,
)
from repro.util.arrays import (
    as_float_array,
    as_int_array,
    bincount_fixed,
    group_sums,
)
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_probability,
    check_in_range,
)

__all__ = [
    "cache_root",
    "stable_hash",
    "seeded_rng",
    "spawn_rng",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "bytes_to_mib",
    "format_bytes",
    "format_time",
    "as_float_array",
    "as_int_array",
    "bincount_fixed",
    "group_sums",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_in_range",
]
