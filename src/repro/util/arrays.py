"""Small NumPy helpers used throughout the reproduction.

Following the scientific-Python optimisation guidance, hot paths in this
project are vectorised; these helpers centralise the dtype coercion and
grouped-reduction idioms so call sites stay readable.
"""

from __future__ import annotations

import numpy as np


def as_float_array(values, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a contiguous ``float64`` array, validating finiteness."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite entries")
    return arr


def as_int_array(values, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a contiguous ``int64`` array."""
    arr = np.asarray(values)
    if arr.dtype.kind == "f":
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ValueError(f"{name} contains non-integral floats")
        arr = rounded
    return np.ascontiguousarray(arr, dtype=np.int64)


def bincount_fixed(labels: np.ndarray, num_bins: int, weights=None) -> np.ndarray:
    """`np.bincount` with a guaranteed output length of ``num_bins``.

    Raises if any label falls outside ``[0, num_bins)`` instead of silently
    growing the output — a mislabelled material or rank id is always a bug.
    """
    labels = as_int_array(labels, "labels")
    if labels.size:
        lo, hi = labels.min(), labels.max()
        if lo < 0 or hi >= num_bins:
            raise ValueError(
                f"labels out of range [0, {num_bins}): min={lo}, max={hi}"
            )
    return np.bincount(labels, weights=weights, minlength=num_bins)[:num_bins]


def group_sums(group_ids: np.ndarray, values: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum ``values`` by ``group_ids`` into an array of length ``num_groups``."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape != np.shape(group_ids):
        raise ValueError("group_ids and values must have identical shapes")
    return bincount_fixed(group_ids, num_groups, weights=values)
