"""Time and size units plus human-readable formatting helpers.

All simulator-internal times are in **seconds** (floats); these constants
exist so model code can say ``5 * MICROSECOND`` instead of ``5e-6``.
"""

from __future__ import annotations

#: One second, the base unit of virtual time.
SECOND = 1.0
#: One millisecond in seconds.
MILLISECOND = 1e-3
#: One microsecond in seconds.
MICROSECOND = 1e-6
#: One nanosecond in seconds.
NANOSECOND = 1e-9

#: Bytes per kibibyte / mebibyte.
KIB = 1024
MIB = 1024 * 1024


def bytes_to_mib(nbytes: float) -> float:
    """Convert a byte count to mebibytes."""
    return nbytes / MIB


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a binary-prefix unit (``B``/``KiB``/``MiB``)."""
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    if nbytes < KIB:
        return f"{nbytes:.0f} B"
    if nbytes < MIB:
        return f"{nbytes / KIB:.2f} KiB"
    return f"{nbytes / MIB:.2f} MiB"


def format_time(seconds: float) -> str:
    """Render a duration with an SI-prefix unit (``ns``/``us``/``ms``/``s``)."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f} ms"
    if magnitude >= MICROSECOND:
        return f"{seconds / MICROSECOND:.3f} us"
    return f"{seconds / NANOSECOND:.1f} ns"
