"""Content-addressed artifact hashing and the shared on-disk cache root.

Every disk-backed memoisation layer in the reproduction — partition files,
sweep results — lives under one cache root (``.cache/`` at the repository
root, or ``$REPRO_CACHE_DIR``) and keys artifacts by a *stable* hash of the
parameters that produced them.  ``stable_hash`` is deliberately independent
of :func:`hash` (which is salted per process) so keys agree across worker
processes and across runs; every deterministic computation keyed this way
can therefore be shared between parallel workers and resumed sessions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import struct
from pathlib import Path

import numpy as np

#: Default cache root at the repository root (src/repro/util/artifacts.py →
#: up three levels past src/); override via REPRO_CACHE_DIR.
DEFAULT_CACHE_ROOT = Path(__file__).resolve().parents[3] / ".cache"


def cache_root() -> Path:
    """Resolve the shared on-disk cache root directory."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return Path(override) if override else DEFAULT_CACHE_ROOT


def _update(digest, obj) -> None:
    """Feed one object into ``digest`` with a type tag per node.

    Tags keep distinct shapes distinct (``[1, 2]`` vs ``"12"`` vs ``12``);
    containers contribute their length so concatenations cannot collide.
    """
    if obj is None:
        digest.update(b"none;")
    elif isinstance(obj, (bool, np.bool_)):
        digest.update(b"bool:1;" if obj else b"bool:0;")
    elif isinstance(obj, (int, np.integer)):
        digest.update(b"int:%d;" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        digest.update(b"float:" + struct.pack("<d", float(obj)) + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        digest.update(b"str:%d:" % len(raw) + raw + b";")
    elif isinstance(obj, bytes):
        digest.update(b"bytes:%d:" % len(obj) + obj + b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        header = f"array:{arr.dtype.str}:{arr.shape}:".encode()
        digest.update(header)
        digest.update(arr.tobytes())
        digest.update(b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        digest.update(f"dataclass:{type(obj).__qualname__}:".encode())
        # Fields named in _HASH_OPTIONAL_FIELDS_ are skipped while None, so
        # a dataclass can grow a new optional axis without re-keying every
        # artifact produced before the field existed (the byte stream is
        # identical to the pre-field layout — field count is not hashed).
        optional = getattr(obj, "_HASH_OPTIONAL_FIELDS_", ())
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if value is None and field.name in optional:
                continue
            _update(digest, field.name)
            _update(digest, value)
        digest.update(b";")
    elif isinstance(obj, (list, tuple)):
        digest.update(b"seq:%d:" % len(obj))
        for item in obj:
            _update(digest, item)
        digest.update(b";")
    elif isinstance(obj, dict):
        keys = sorted(obj)
        digest.update(b"map:%d:" % len(keys))
        for key in keys:
            _update(digest, key)
            _update(digest, obj[key])
        digest.update(b";")
    else:
        raise TypeError(
            f"stable_hash cannot canonicalise {type(obj).__name__!r}; "
            "use primitives, numpy arrays, containers, or dataclasses of those"
        )


def stable_hash(obj) -> str:
    """Hex digest of ``obj``, identical across processes and sessions.

    Accepts arbitrarily nested primitives, numpy arrays, lists/tuples,
    string-keyed dicts, and dataclasses (hashed by qualified class name and
    field values, so two parameter sets are equal iff their content is).
    """
    digest = hashlib.sha256()
    _update(digest, obj)
    return digest.hexdigest()
