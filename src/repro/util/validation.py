"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not (value > 0):
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not (value >= 0):
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if math.isnan(value) or not (lo <= value <= hi):
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value!r}")
    return value
