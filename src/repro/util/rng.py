"""Deterministic random-number management.

Everything in this reproduction must be bit-reproducible: the "measured"
numbers come from a simulator, not a wall clock, so any randomness (e.g.
calibration noise, partitioner tie-breaking) flows through seeded
:class:`numpy.random.Generator` instances created here.
"""

from __future__ import annotations

import numpy as np

#: Default seed used across the project when callers do not supply one.
DEFAULT_SEED = 20060613


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` with a fixed default seed.

    Parameters
    ----------
    seed:
        Explicit seed.  ``None`` selects :data:`DEFAULT_SEED` (never an
        OS-entropy seed — determinism is a hard requirement here).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(parent: np.random.Generator, key: int) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and ``key``.

    Used to give each simulated rank / each calibration run its own stream
    so that changing the number of ranks does not perturb unrelated draws.
    """
    if key < 0:
        raise ValueError(f"stream key must be non-negative, got {key}")
    base = int(parent.integers(0, 2**63 - 1))
    # Re-seed the parent draw back in so repeated spawns with different keys
    # from the same parent state stay independent of call order.
    return np.random.default_rng((base ^ (key * 0x9E3779B97F4A7C15)) % (2**63))
