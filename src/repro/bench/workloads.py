"""The registered benchmark workloads.

One entry per ``benchmarks/bench_*.py`` timed workload plus the hot-path
micro-benchmarks (``micro.*``).  Each :class:`~repro.bench.registry.Benchmark`
builds its inputs in ``setup`` (memoised across benches — decks, face
tables, partitions, and calibrated cost tables are shared) and exposes the
timed callable as ``run``; ``invariants`` captures the simulated/predicted
quantities that must stay bitwise-stable between runs on the same code.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import Benchmark, register

# --------------------------------------------------------------- shared setup

_MEMO: dict = {}


def _memo(key, build):
    if key not in _MEMO:
        _MEMO[key] = build()
    return _MEMO[key]


def _cluster():
    from repro.core import ClusterSpec

    return _memo("cluster", ClusterSpec().build)


def _smp_cluster():
    from repro.core import ClusterSpec

    return _memo("smp", ClusterSpec(smp=True).build)


def _deck(name):
    from repro.core import parse_deck

    return _memo(("deck", name), lambda: parse_deck(name))


def _faces(name):
    from repro.core import faces_for

    return _memo(("faces", name), lambda: faces_for(_deck(name)))


def _partition(deck_name, num_ranks, method="multilevel", seed=1):
    from repro.partition import cached_partition

    return _memo(
        ("part", deck_name, num_ranks, method, seed),
        lambda: cached_partition(
            _deck(deck_name), num_ranks, method=method, seed=seed,
            faces=_faces(deck_name),
        ),
    )


def _census(deck_name, num_ranks):
    from repro.hydro import build_workload_census

    return _memo(
        ("census", deck_name, num_ranks),
        lambda: build_workload_census(
            _deck(deck_name), _partition(deck_name, num_ranks), _faces(deck_name)
        ),
    )


#: Coarse power-of-two calibration (fast, smoke-grade).
COARSE_SIDES = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def _cost_table(kind):
    from repro.core import calibration_table
    from repro.perfmodel import default_sample_sides

    sides = COARSE_SIDES if kind == "coarse" else default_sample_sides(512)
    return _memo(("table", kind), lambda: calibration_table(_cluster(), sides))


# ------------------------------------------------------------------- micro.*

#: The Table 3 worked example (Figure 4 boundary).
TABLE3_FACES = np.array([3.0, 4.0, 3.0])
TABLE3_MULTI = np.array([1.0, 3.0, 2.0])


def _setup_tmsg_boundary(size):
    rng = np.random.default_rng(2006)
    count = 400 if size == "smoke" else 2000
    boundaries = []
    for _ in range(count):
        faces = rng.integers(1, 40, size=4).astype(np.float64)
        multi = rng.integers(0, 8, size=4).astype(np.float64)
        boundaries.append((faces, multi))
    return {"network": _cluster().network, "boundaries": boundaries}


def _run_tmsg_boundary(ctx):
    from repro.perfmodel import boundary_exchange_time

    net = ctx["network"]
    total = 0.0
    for faces, multi in ctx["boundaries"]:
        total += boundary_exchange_time(net, faces, multi)
    return total


register(Benchmark(
    name="micro.tmsg_boundary_eval",
    group="micro",
    description="Tmsg-bound hot path: Equation-(5) boundary tally over many boundaries",
    source="src/repro/perfmodel/boundary.py",
    setup=_setup_tmsg_boundary,
    run=_run_tmsg_boundary,
    invariants=lambda ctx, result: {"total_time_s": float(result)},
))


def _setup_engine_loop(size):
    ranks, iters = (32, 30) if size == "smoke" else (64, 80)
    return {"cluster": _cluster(), "ranks": ranks, "iters": iters}


def _run_engine_loop(ctx):
    from repro.simmpi import (
        Allreduce,
        Compute,
        Engine,
        Isend,
        Recv,
        SetPhase,
        WaitSends,
    )

    ranks = ctx["ranks"]
    iters = ctx["iters"]

    def prog(rank):
        right = (rank + 1) % ranks
        left = (rank - 1) % ranks
        for it in range(iters):
            yield SetPhase(0)
            yield Compute(1e-6)
            yield Isend(right, tag=it, nbytes=256.0)
            yield Recv(left, tag=it)
            yield WaitSends()
            yield Allreduce(1.0, "sum", 8)

    return Engine(ctx["cluster"], ranks, 1).run(prog).makespan


register(Benchmark(
    name="micro.engine_event_loop",
    group="micro",
    description="simmpi event-loop throughput: ring exchange + allreduce per iteration",
    source="src/repro/simmpi/engine.py",
    setup=_setup_engine_loop,
    run=_run_engine_loop,
    invariants=lambda ctx, result: {"makespan_s": float(result)},
    repeats=3,
))


# ------------------------------------------------------------------- engine.*

def _setup_engine_batch(size):
    iters = 6 if size == "smoke" else 12
    return {
        "deck": _deck("small"), "part": _partition("small", 16),
        "faces": _faces("small"), "census": _census("small", 16),
        "cluster": _cluster(), "iters": iters,
    }


def _run_engine_batch_vs_scalar(ctx):
    from repro.hydro import run_krak

    # Both engines price the same static census run inside the timed
    # region; the invariants pin that they agreed bitwise on the makespan.
    return {
        eng: run_krak(
            ctx["deck"], ctx["part"], cluster=ctx["cluster"],
            iterations=ctx["iters"], faces=ctx["faces"], census=ctx["census"],
            engine=eng,
        )
        for eng in ("batch", "scalar")
    }


register(Benchmark(
    name="engine.batch_vs_scalar",
    group="engine",
    description="batch-compiled vs scalar event-loop pricing of one static run",
    source="src/repro/simmpi/compile.py",
    setup=_setup_engine_batch,
    run=_run_engine_batch_vs_scalar,
    invariants=lambda ctx, runs: {
        "batch_makespan_s": float(runs["batch"].result.makespan),
        "scalar_makespan_s": float(runs["scalar"].result.makespan),
        "bitwise_equal": float(
            runs["batch"].result.makespan == runs["scalar"].result.makespan
        ),
    },
    repeats=2,
))


def _setup_mesh_census(size):
    from repro.perfmodel import MeshSpecificModel

    ranks = 64 if size == "smoke" else 128
    model = MeshSpecificModel(
        table=_cost_table("coarse"), network=_cluster().network
    )
    return {"model": model, "census": _census("small", ranks)}


def _run_mesh_census(ctx):
    return ctx["model"].point_to_point(ctx["census"])


register(Benchmark(
    name="micro.mesh_census",
    group="micro",
    description="mesh-specific per-link message tally (Equations 5-7) over a census",
    source="src/repro/perfmodel/mesh_specific.py",
    setup=_setup_mesh_census,
    run=_run_mesh_census,
    invariants=lambda ctx, result: {
        "boundary_exchange_s": float(result[0]),
        "ghost_updates_s": float(result[1]),
    },
))


def _setup_multilevel(size):
    """Pure structured-mesh partitioner micro-bench (no deck construction);
    the deck-based variant lives under ``figure1.multilevel_partition``."""
    from repro.mesh import build_face_table, structured_quad_mesh

    nx, ny, ranks = (64, 32, 8) if size == "smoke" else (128, 64, 16)
    mesh = _memo(("mesh", nx, ny), lambda: structured_quad_mesh(nx, ny))
    faces = _memo(("mfaces", nx, ny), lambda: build_face_table(mesh))
    return {"mesh": mesh, "faces": faces, "ranks": ranks}


def _run_multilevel(ctx):
    from repro.partition import multilevel_partition

    return multilevel_partition(ctx["mesh"], ctx["ranks"], faces=ctx["faces"], seed=1)


def _multilevel_invariants(ctx, part):
    counts = np.bincount(part.cell_rank, minlength=part.num_ranks)
    return {
        "num_ranks": int(part.num_ranks),
        "largest_part": int(counts.max()),
        "smallest_part": int(counts.min()),
    }


register(Benchmark(
    name="micro.multilevel_partition",
    group="micro",
    description="multilevel k-way partitioner (Metis analogue) end to end",
    source="src/repro/partition/multilevel.py",
    setup=_setup_multilevel,
    run=_run_multilevel,
    invariants=_multilevel_invariants,
    repeats=3,
))


# ------------------------------------------------------------------- table*.*

def _setup_iteration_sim(size):
    iters = 1 if size == "smoke" else 3
    return {
        "deck": _deck("small"), "part": _partition("small", 16),
        "faces": _faces("small"), "census": _census("small", 16),
        "cluster": _cluster(), "iters": iters,
    }


def _run_iteration_sim(ctx):
    from repro.hydro import run_krak

    return run_krak(
        ctx["deck"], ctx["part"], cluster=ctx["cluster"],
        iterations=ctx["iters"], faces=ctx["faces"], census=ctx["census"],
    ).result.makespan


register(Benchmark(
    name="table1.iteration_simulation",
    group="table1",
    description="full 15-phase simulated iteration, small deck on 16 ranks",
    source="benchmarks/bench_table1_phase_structure.py",
    setup=_setup_iteration_sim,
    run=_run_iteration_sim,
    invariants=lambda ctx, result: {"makespan_s": float(result)},
    repeats=3,
))


register(Benchmark(
    name="table2.deck_construction",
    group="table2",
    description="input-deck construction (mesh + materials + detonator)",
    source="benchmarks/bench_table2_material_ratios.py",
    setup=lambda size: {"name": "small" if size == "smoke" else "medium"},
    run=lambda ctx: __import__("repro.mesh", fromlist=["build_deck"]).build_deck(
        ctx["name"]
    ),
    invariants=lambda ctx, deck: {"num_cells": int(deck.num_cells)},
    repeats=3,
    threshold=0.60,
))


def _setup_table3(size):
    return {
        "network": _cluster().network,
        "evals": 200 if size == "smoke" else 1000,
    }


def _run_table3(ctx):
    from repro.perfmodel import boundary_exchange_time

    net = ctx["network"]
    t = 0.0
    for _ in range(ctx["evals"]):
        t = boundary_exchange_time(net, TABLE3_FACES, TABLE3_MULTI)
    return t


register(Benchmark(
    name="table3.boundary_exchange_model",
    group="table3",
    description="Equation (5) on the paper's Table 3 worked example",
    source="benchmarks/bench_table3_boundary_exchange.py",
    setup=_setup_table3,
    run=_run_table3,
    invariants=lambda ctx, result: {"exchange_time_s": float(result)},
))


def _run_table4(ctx):
    from repro.perfmodel import collectives_time

    net = ctx["network"]
    return [collectives_time(net, p) for p in ctx["ranks"]]


register(Benchmark(
    name="table4.collectives_model",
    group="table4",
    description="Equations (8)-(10) collective times across processor counts",
    source="benchmarks/bench_table4_collectives.py",
    setup=lambda size: {
        "network": _cluster().network,
        "ranks": (16, 64, 128, 256, 512, 1024) * (1 if size == "smoke" else 20),
    },
    run=_run_table4,
    invariants=lambda ctx, result: {"total_at_1024_s": float(result[5])},
    threshold=0.6,
))


def _setup_table5(size):
    from repro.perfmodel import MeshSpecificModel

    ranks = 64 if size == "smoke" else 128
    model = MeshSpecificModel(table=_cost_table("coarse"), network=_cluster().network)
    return {"model": model, "census": _census("small", ranks)}


register(Benchmark(
    name="table5.mesh_specific_predict",
    group="table5",
    description="mesh-specific model prediction with exact partition information",
    source="benchmarks/bench_table5_mesh_specific.py",
    setup=_setup_table5,
    run=lambda ctx: ctx["model"].predict(ctx["census"]),
    invariants=lambda ctx, pred: {"total_s": float(pred.total)},
))


def _setup_table6(size):
    from repro.perfmodel import GeneralModel

    table = _cost_table("coarse" if size == "smoke" else "fine")
    model = GeneralModel(
        table=table, network=_cluster().network, mode="homogeneous"
    )
    return {"model": model}


register(Benchmark(
    name="table6.general_model_predict",
    group="table6",
    description="general (homogeneous) model prediction at 512 PEs",
    source="benchmarks/bench_table6_general_model.py",
    setup=_setup_table6,
    run=lambda ctx: ctx["model"].predict(819200, 512),
    invariants=lambda ctx, pred: {"total_s": float(pred.total)},
    threshold=0.6,
))


# ------------------------------------------------------------------ figure*.*

register(Benchmark(
    name="figure1.multilevel_partition",
    group="figure1",
    description="multilevel partition of the small deck at 16 ranks",
    source="benchmarks/bench_figure1_partition.py",
    setup=lambda size: {
        "mesh": _deck("small").mesh, "faces": _faces("small"),
        "ranks": 8 if size == "smoke" else 16,
    },
    run=_run_multilevel,
    invariants=_multilevel_invariants,
    repeats=3,
))


def _setup_boundary_census(size):
    ranks = 8 if size == "smoke" else 16
    deck = _deck("small")
    return {
        "deck": deck, "faces": _faces("small"),
        "part": _partition("small", ranks), "ranks": ranks,
    }


def _run_boundary_census(ctx):
    from repro.mesh import boundary_census

    return boundary_census(
        ctx["deck"].mesh, ctx["faces"], ctx["deck"].cell_material,
        ctx["part"].cell_rank, ctx["ranks"],
    )


register(Benchmark(
    name="figure1.boundary_census",
    group="figure1",
    description="partition-boundary census construction",
    source="benchmarks/bench_figure1_partition.py",
    setup=_setup_boundary_census,
    run=_run_boundary_census,
    invariants=lambda ctx, census: {"num_pairs": len(census.pairs)},
    threshold=0.6,
))


def _setup_figure2(size):
    ranks = 64 if size == "smoke" else 256
    return {
        "deck": _deck("small"), "part": _partition("small", ranks),
        "faces": _faces("small"), "census": _census("small", ranks),
        "cluster": _cluster(), "iters": 1,
    }


register(Benchmark(
    name="figure2.census_timing_run",
    group="figure2",
    description="execution-driven simulation at scale (small deck, many ranks)",
    source="benchmarks/bench_figure2_phase_times.py",
    setup=_setup_figure2,
    run=_run_iteration_sim,
    invariants=lambda ctx, result: {"makespan_s": float(result)},
    repeats=2,
))


def _setup_figure3(size):
    sides = [1, 8, 64] if size == "smoke" else COARSE_SIDES
    return {"cluster": _cluster(), "sides": sides}


def _run_figure3(ctx):
    from repro.perfmodel import calibrate_contrived_grid

    return calibrate_contrived_grid(ctx["cluster"], sides=ctx["sides"])


register(Benchmark(
    name="figure3.contrived_calibration",
    group="figure3",
    description="contrived-grid cost-curve calibration",
    source="benchmarks/bench_figure3_percell_curves.py",
    setup=_setup_figure3,
    run=_run_figure3,
    invariants=lambda ctx, table: {
        "num_phases": int(table.num_phases),
        "phase2_mat0_last_per_cell_s": float(table.curves[1][0].per_cell[-1]),
    },
    repeats=2,
))


def _setup_figure5(size):
    from repro.perfmodel import GeneralModel

    table = _cost_table("coarse" if size == "smoke" else "fine")
    net = _cluster().network
    return {
        "homo": GeneralModel(table=table, network=net, mode="homogeneous"),
        "het": GeneralModel(table=table, network=net, mode="heterogeneous"),
    }


def _run_figure5(ctx):
    out = []
    p = 1
    while p <= 1024:
        out.append(
            (ctx["homo"].predict(819200, p).total, ctx["het"].predict(819200, p).total)
        )
        p *= 2
    return out


register(Benchmark(
    name="figure5.scaling_models_only",
    group="figure5",
    description="general-model scaling sweep, both variants, P = 1..1024",
    source="benchmarks/bench_figure5_scaling.py",
    setup=_setup_figure5,
    run=_run_figure5,
    invariants=lambda ctx, result: {
        "homo_at_1024_s": float(result[-1][0]),
        "het_at_1024_s": float(result[-1][1]),
    },
))


def _setup_extreme(size):
    from repro.perfmodel import SparseMeshModel, weak_scaled_census

    ranks = 100_000 if size == "smoke" else 1_000_000
    return {
        "ranks": ranks,
        "census": weak_scaled_census(ranks),
        "model": SparseMeshModel(
            table=_cost_table("coarse"), network=_cluster().network
        ),
    }


def _run_extreme(ctx):
    import tracemalloc

    tracemalloc.start()
    try:
        predicted = ctx["model"].predict(ctx["census"])
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return predicted, peak


register(Benchmark(
    name="figure5.extreme_scaling",
    group="figure5",
    description="sparse-path prediction at 10^5 (smoke) / 10^6 ranks, peak-memory guarded",
    source="src/repro/perfmodel/sparse_mesh.py",
    setup=_setup_extreme,
    run=_run_extreme,
    invariants=lambda ctx, result: {
        "total_s": float(result[0].total),
        "boundary_s": float(result[0].boundary_exchange),
        "collectives_s": float(result[0].collectives),
        # A dense path would need an 8 * P^2-byte matrix (80 GB at smoke
        # scale); the sparse path must stay within a per-rank budget.
        "peak_mem_under_4kb_per_rank": bool(result[1] < 4096 * ctx["ranks"]),
    },
    repeats=2,
))


# ----------------------------------------------------------------- ablation.*

def _setup_allreduce(size):
    return {"cluster": _cluster(), "ranks": 256 if size == "smoke" else 1024}


def _run_allreduce(ctx):
    from repro.simmpi import Allreduce, Compute, Engine, SetPhase

    def prog(rank):
        yield SetPhase(0)
        yield Compute(0.0)
        yield Allreduce(1.0, "sum", 8)

    return Engine(ctx["cluster"], ctx["ranks"], 1).run(prog).makespan


register(Benchmark(
    name="ablation.simulated_allreduce",
    group="ablation",
    description="DES cost of one large-scale allreduce",
    source="benchmarks/bench_ablation_collectives.py",
    setup=_setup_allreduce,
    run=_run_allreduce,
    invariants=lambda ctx, result: {"makespan_s": float(result)},
    repeats=3,
    threshold=0.60,
))


register(Benchmark(
    name="ablation.calibration_density",
    group="ablation",
    description="contrived-grid calibration cost at a representative sample density",
    source="benchmarks/bench_ablation_knee.py",
    setup=lambda size: {
        "cluster": _cluster(),
        "sides": [1, 4, 16, 64] if size == "smoke" else [1, 2, 4, 8, 16, 32, 64, 128],
    },
    run=_run_figure3,
    invariants=lambda ctx, table: {"num_phases": int(table.num_phases)},
    repeats=2,
))


def _setup_p2p_no_surcharge(size):
    from repro.perfmodel import MeshSpecificModel

    ranks = 64 if size == "smoke" else 128
    model = MeshSpecificModel(
        table=_cost_table("coarse"), network=_cluster().network,
        include_multi_surcharge=False,
    )
    return {"model": model, "census": _census("small", ranks)}


register(Benchmark(
    name="ablation.p2p_model_evaluation",
    group="ablation",
    description="point-to-point tally, printed-Equation-(5) variant (no surcharge)",
    source="benchmarks/bench_ablation_overlap.py",
    setup=_setup_p2p_no_surcharge,
    run=_run_mesh_census,
    invariants=lambda ctx, result: {
        "boundary_exchange_s": float(result[0]),
        "ghost_updates_s": float(result[1]),
    },
))


def _setup_partitioners(size):
    deck = _deck("small")
    methods = (
        ("rcb", "block", "structured-block")
        if size == "smoke"
        else ("multilevel", "rcb", "block", "structured-block")
    )
    return {"deck": deck, "faces": _faces("small"), "methods": methods}


def _run_partitioners(ctx):
    from repro.partition import cached_partition

    return [
        cached_partition(
            ctx["deck"], 16, method=m, seed=1, faces=ctx["faces"], use_cache=False
        )
        for m in ctx["methods"]
    ]


register(Benchmark(
    name="ablation.partitioners",
    group="ablation",
    description="all partitioning methods on the small deck at 16 ranks",
    source="benchmarks/bench_ablation_partitioners.py",
    setup=_setup_partitioners,
    run=_run_partitioners,
    invariants=lambda ctx, parts: {"methods": len(parts)},
    repeats=2,
    threshold=0.6,
))


# ---------------------------------------------------------------------- ext.*

def _setup_smp(size):
    ranks = 16
    return {
        "deck": _deck("small"), "part": _partition("small", ranks),
        "faces": _faces("small"), "census": _census("small", ranks),
        "cluster": _smp_cluster(),
    }


def _run_smp(ctx):
    from repro.hydro import measure_iteration_time

    return measure_iteration_time(
        ctx["deck"], ctx["part"], cluster=ctx["cluster"],
        faces=ctx["faces"], census=ctx["census"],
    ).seconds


register(Benchmark(
    name="ext.smp_simulation",
    group="ext",
    description="simulated iteration with the SMP (hierarchical network) extension",
    source="benchmarks/bench_ext_smp_hierarchy.py",
    setup=_setup_smp,
    run=_run_smp,
    invariants=lambda ctx, result: {"seconds": float(result)},
    repeats=2,
))


def _setup_transition(size):
    from repro.perfmodel import TransitionModel

    deck = _deck("small" if size == "smoke" else "medium")
    model = TransitionModel.for_deck(
        deck, _cost_table("coarse"), _cluster().network
    )
    return {"model": model, "cells": deck.num_cells}


register(Benchmark(
    name="ext.transition_predict",
    group="ext",
    description="transition-model prediction at 512 PEs",
    source="benchmarks/bench_ext_transition_model.py",
    setup=_setup_transition,
    run=lambda ctx: ctx["model"].predict(ctx["cells"], 512),
    invariants=lambda ctx, pred: {"total_s": float(pred.total)},
))


# ---------------------------------------------------------------- placement.*

def _overhead_smp_cluster(speed=1.0, ranks_per_node=4):
    """SMP cluster with the shared-memory transport's cheaper host overheads."""
    from repro.machine import es45_like_cluster

    return _memo(
        ("smp-oh", speed, ranks_per_node),
        lambda: es45_like_cluster(speed=speed).with_smp(
            ranks_per_node=ranks_per_node,
            intra_send_overhead=0.5e-6,
            intra_recv_overhead=0.7e-6,
        ),
    )


def _setup_place_optimize(size):
    ranks = 24 if size == "smoke" else 64
    return {
        "census": _census("small", ranks),
        "cluster": _overhead_smp_cluster(),
        "ranks": ranks,
    }


def _run_place_optimize(ctx):
    from repro.placement import optimize_placement

    return optimize_placement(ctx["census"], ctx["cluster"])


def _place_optimize_invariants(ctx, placement):
    from repro.placement import (
        block_placement,
        inter_node_bytes,
        placement_comm_cost,
        rank_comm_bytes,
        rank_pair_times,
    )

    graph = rank_comm_bytes(ctx["census"])
    t_intra, t_inter = rank_pair_times(ctx["census"], ctx["cluster"])
    block = block_placement(ctx["ranks"], placement.ranks_per_node)
    return {
        "block_inter_bytes": inter_node_bytes(block, graph),
        "optimized_inter_bytes": inter_node_bytes(placement, graph),
        "block_max_rank_cost_s": placement_comm_cost(
            block.node_of_rank, t_intra, t_inter
        )[0],
        "optimized_max_rank_cost_s": placement_comm_cost(
            placement.node_of_rank, t_intra, t_inter
        )[0],
    }


register(Benchmark(
    name="placement.comm_aware_optimize",
    group="placement",
    description="comm-aware placement optimizer (multi-start bisection + minimax refine)",
    source="src/repro/placement/optimize.py",
    setup=_setup_place_optimize,
    run=_run_place_optimize,
    invariants=_place_optimize_invariants,
    repeats=3,
    threshold=0.6,
))


def _setup_pairwise_pricing(size):
    from repro.placement import random_placement

    ranks, count = (64, 20000) if size == "smoke" else (256, 100000)
    rng = np.random.default_rng(2006)
    hierarchy = _smp_cluster().hierarchy.with_placement(
        random_placement(ranks, 4, seed=7)
    )
    a = rng.integers(0, ranks, size=count)
    b = (a + rng.integers(1, ranks, size=count)) % ranks
    sizes = rng.integers(1, 65536, size=count).astype(np.float64)
    return {"hierarchy": hierarchy, "a": a, "b": b, "sizes": sizes}


def _run_pairwise_pricing(ctx):
    return float(
        ctx["hierarchy"].tmsg_pairs(ctx["a"], ctx["b"], ctx["sizes"]).sum()
    )


register(Benchmark(
    name="placement.pairwise_pricing",
    group="placement",
    description="batched endpoint-aware Tmsg (same-node mask over tmsg_many)",
    source="src/repro/machine/hierarchy.py",
    setup=_setup_pairwise_pricing,
    run=_run_pairwise_pricing,
    invariants=lambda ctx, result: {"total_time_s": float(result)},
))


def _setup_place_scenario(size):
    from repro.placement import block_placement, optimize_placement

    ranks = 16
    census = _census("small", ranks)
    cluster = _overhead_smp_cluster(speed=8.0)
    return {
        "deck": _deck("small"), "part": _partition("small", ranks),
        "faces": _faces("small"), "census": census,
        "block": cluster.with_placement(block_placement(ranks, 4)),
        "optimized": cluster.with_placement(
            optimize_placement(census, cluster)
        ),
    }


def _run_place_scenario(ctx):
    from repro.hydro import measure_iteration_time

    t_block = measure_iteration_time(
        ctx["deck"], ctx["part"], cluster=ctx["block"],
        faces=ctx["faces"], census=ctx["census"],
    ).seconds
    t_opt = measure_iteration_time(
        ctx["deck"], ctx["part"], cluster=ctx["optimized"],
        faces=ctx["faces"], census=ctx["census"],
    ).seconds
    return t_block, t_opt


register(Benchmark(
    name="placement.smp_scenario",
    group="placement",
    description="SMP-hierarchy scenario: block vs comm-aware placement, 4 ranks/node",
    source="benchmarks/bench_placement_strategies.py",
    setup=_setup_place_scenario,
    run=_run_place_scenario,
    invariants=lambda ctx, result: {
        "block_s": float(result[0]),
        "comm_aware_s": float(result[1]),
        "improvement_frac": float((result[0] - result[1]) / result[0]),
    },
    repeats=2,
))


# ------------------------------------------------------------------ dynamic.*

def _setup_dynamic(size):
    from repro.hydro import DynamicConfig
    from repro.partition import ImbalanceThresholdPolicy

    iters = 6 if size == "smoke" else 8
    return {
        "deck": _deck("small"), "part": _partition("small", 16),
        "faces": _faces("small"), "cluster": _cluster(), "iters": iters,
        "config": DynamicConfig(
            policy=ImbalanceThresholdPolicy(threshold=1.15), burn_multiplier=8.0
        ),
    }


def _run_dynamic(ctx):
    from repro.hydro import run_krak

    return run_krak(
        ctx["deck"], ctx["part"], cluster=ctx["cluster"], iterations=ctx["iters"],
        faces=ctx["faces"], dynamic=ctx["config"],
    )


register(Benchmark(
    name="dynamic.imbalance_run",
    group="dynamic",
    description="dynamic-workload run under the imbalance-threshold policy",
    source="benchmarks/bench_dynamic_imbalance.py",
    setup=_setup_dynamic,
    run=_run_dynamic,
    invariants=lambda ctx, run: {
        "makespan_s": float(run.result.makespan),
        "num_repartitions": int(run.dynamic.num_repartitions),
    },
    repeats=2,
))


# ------------------------------------------------------------------ perturb.*

def _setup_perturb(size):
    return {
        "deck": _deck("small"), "part": _partition("small", 16),
        "faces": _faces("small"), "cluster": _cluster(),
        "iters": 4 if size == "smoke" else 6,
        "amplitudes": (0.0, 0.05, 0.2) if size == "smoke"
        else (0.0, 0.02, 0.05, 0.1, 0.2),
    }


def _run_perturb_straggler(ctx):
    from repro.hydro import run_krak
    from repro.perturb import PerturbSpec

    def result_of(perturb):
        return run_krak(
            ctx["deck"], ctx["part"], cluster=ctx["cluster"],
            iterations=ctx["iters"], faces=ctx["faces"], perturb=perturb,
        ).result

    baseline = result_of(None)
    # One seed across the sweep: common random numbers, so every amplitude
    # scales the *same* exponential draws and hits the same stragglers —
    # which is what makes the makespan provably monotone in amplitude.
    sweep = [
        result_of(PerturbSpec(
            seed=7,
            compute_noise=amp,
            straggler_prob=0.25 if amp else 0.0,
            straggler_factor=4.0,
        ))
        for amp in ctx["amplitudes"]
    ]
    return baseline, sweep


def _perturb_invariants(ctx, result):
    import numpy as np

    baseline, sweep = result
    zero = sweep[0]
    makespans = [r.makespan for r in sweep]
    return {
        # The null spec must be bitwise free, not merely close.
        "zero_noise_identity": bool(
            np.array_equal(zero.trace.compute, baseline.trace.compute)
            and np.array_equal(zero.trace.comm, baseline.trace.comm)
            and np.array_equal(zero.final_clocks, baseline.final_clocks)
        ),
        "monotone_slowdown": bool(
            all(b >= a for a, b in zip(makespans, makespans[1:]))
        ),
        "baseline_s": float(baseline.makespan),
        "max_noise_s": float(makespans[-1]),
    }


register(Benchmark(
    name="perturb.straggler_sweep",
    group="perturb",
    description="straggler/OS-noise amplitude sweep: zero-noise identity + monotone slowdown",
    source="src/repro/perturb/model.py",
    setup=_setup_perturb,
    run=_run_perturb_straggler,
    invariants=_perturb_invariants,
    repeats=2,
))


# ------------------------------------------------------------------- verify.*

def _setup_verify_fuzz(size):
    return {"count": 6 if size == "smoke" else 24}


def _run_verify_fuzz(ctx):
    from repro.verify import fuzz

    # Regenerates + verifies inside the timed region: the bench tracks the
    # end-to-end cost of one differential sweep (shrinking is failure-path
    # only and stays off so a regression cannot also distort the timing).
    return fuzz(ctx["count"], shrink=False)


register(Benchmark(
    name="verify.fuzz_smoke",
    group="verify",
    description="differential fuzz sweep: optimized engine vs reference oracle",
    source="src/repro/verify/diff.py",
    setup=_setup_verify_fuzz,
    run=_run_verify_fuzz,
    invariants=lambda ctx, result: {
        "scenarios": int(result.num_seeds),
        "failures": int(len(result.failures)),
    },
    repeats=3,
))


# ------------------------------------------------------------------ service.*

def _setup_query_storm(size):
    from repro.core import PredictionRequest, predict

    request = PredictionRequest(deck="16x8", ranks=4, max_side=16)
    # Pre-warm the in-process calibration memo so the timed region measures
    # service overhead (HTTP, coalescing, cache tiers), not the one-off
    # calibration cost.
    predict(request)
    return {"request": request, "queries": 8 if size == "smoke" else 32}


def _run_query_storm(ctx):
    import asyncio
    import threading

    from repro.core import LRUResultCache
    from repro.service import PredictionServer, ServiceClient, run_storm

    server = PredictionServer(
        host="127.0.0.1", port=0, cache=LRUResultCache(store=None)
    )
    started = threading.Event()

    def serve():
        async def main():
            await server.start()
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("prediction server did not start")
    client = ServiceClient(host="127.0.0.1", port=server.port)
    storm = run_storm(client, [ctx["request"]] * ctx["queries"], mode="predict")
    client.shutdown()
    thread.join(timeout=30)
    return storm


register(Benchmark(
    name="service.query_storm",
    group="service",
    description="prediction service under a concurrent identical-query storm",
    source="src/repro/service/server.py",
    setup=_setup_query_storm,
    run=_run_query_storm,
    # The computed/cached split is the service's load-bearing guarantee:
    # an identical-query storm simulates exactly once, answers once each.
    invariants=lambda ctx, storm: {
        "computed": int(storm.num_computed),
        "cached": int(storm.num_cached),
        "distinct_payloads": int(storm.distinct_payloads()),
        "total_s": float(storm.results[0].predicted["heterogeneous"]),
    },
    repeats=3,
))


# Public faces of the memoised setup helpers, shared with the pytest
# fixture layer (benchmarks/conftest.py) so one session never builds the
# same deck or calibration table twice.
shared_cluster = _cluster
shared_cost_table = _cost_table
shared_deck = _deck
