"""Machine-readable benchmark reports (``BENCH_<suite>.json``).

A report is one JSON document: a schema tag, the suite name, an environment
fingerprint (so trajectory points are comparable only with matching
context), and one entry per benchmark with raw wall times, robust stats,
and the simulated-time invariants.  ``validate_report`` is the schema
gate used on both emission and load, so a drifting producer fails fast.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = "repro-bench/1"

#: Required per-benchmark keys and the type each must carry.
_BENCH_KEYS = {
    "group": str,
    "size": str,
    "warmup": int,
    "repeats": int,
    "threshold": float,
    "wall_s": list,
    "stats": dict,
    "invariants": dict,
}

_STAT_KEYS = ("best", "median", "mean", "max", "stdev")


def _git_commit() -> str | None:
    """Best-effort current commit id (None outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def environment_fingerprint() -> dict:
    """The context a timing is only comparable within."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "git_commit": _git_commit(),
    }


def build_report(suite: str, timings: list, extra: dict | None = None) -> dict:
    """Assemble the JSON document for a suite run.

    ``extra`` lands under the ``"extra"`` key — e.g. the trajectory notes
    recording before/after numbers of an optimisation.
    """
    doc = {
        "schema": SCHEMA,
        "suite": suite,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": environment_fingerprint(),
        "benchmarks": {t.bench.name: t.to_dict() for t in timings},
    }
    if extra:
        doc["extra"] = dict(extra)
    return doc


def validate_report(doc) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed suite report."""
    if not isinstance(doc, dict):
        raise ValueError("report must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"unsupported schema {doc.get('schema')!r}; want {SCHEMA!r}")
    for key in ("suite", "created_utc", "environment", "benchmarks"):
        if key not in doc:
            raise ValueError(f"report missing {key!r}")
    if not isinstance(doc["benchmarks"], dict):
        raise ValueError("benchmarks must be an object")
    for name, entry in doc["benchmarks"].items():
        if not isinstance(entry, dict):
            raise ValueError(f"benchmark {name!r} entry must be an object")
        for key, typ in _BENCH_KEYS.items():
            if key not in entry:
                raise ValueError(f"benchmark {name!r} missing {key!r}")
            value = entry[key]
            if typ is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            else:
                ok = isinstance(value, typ)
            if not ok:
                raise ValueError(
                    f"benchmark {name!r} field {key!r} must be {typ.__name__}"
                )
        if len(entry["wall_s"]) != entry["repeats"]:
            raise ValueError(f"benchmark {name!r}: wall_s length != repeats")
        for stat in _STAT_KEYS:
            if stat not in entry["stats"]:
                raise ValueError(f"benchmark {name!r} stats missing {stat!r}")


def write_report(doc: dict, path) -> Path:
    """Validate and write ``doc`` to ``path`` (pretty-printed, atomic)."""
    validate_report(doc)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
    os.replace(tmp, path)
    return path


def load_report(path) -> dict:
    """Load and validate a report file."""
    doc = json.loads(Path(path).read_text())
    validate_report(doc)
    return doc
