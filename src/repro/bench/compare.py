"""Regression gating between two benchmark reports.

``compare_reports(old, new)`` walks the union of benchmark names and
classifies each as:

* ``pass`` — wall time within the bench's threshold, invariants equal;
* ``warn`` — faster than the baseline by more than the threshold (the
  committed baseline is stale and should be refreshed), or the bench is
  present in only one report;
* ``fail`` — slower than the baseline beyond the threshold, or the
  simulated-time invariants drifted (a *semantic* change, however fast).

Wall-time ratios use the per-bench robust stat (``median`` by default);
invariant comparison is exact, because simulated time is deterministic.

Wall-clock times are only comparable within a matching environment (the
fingerprint each report records).  When the two reports come from
different machines/interpreters, a threshold exceedance says more about
the hardware than the code, so it is downgraded to ``warn`` — while
invariant drift stays a hard ``fail`` everywhere, being hardware
independent.  Pass ``assume_same_env=True`` to keep wall-time failures
hard regardless (e.g. when you know the machines are equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

PASS, WARN, FAIL = "pass", "warn", "fail"

#: Fingerprint keys that must agree for wall-clock times to be comparable.
ENV_KEYS = ("platform", "machine", "cpu_count", "python", "implementation", "numpy")


def environments_match(old: dict, new: dict) -> bool:
    """Whether two reports' timings are hardware-comparable."""
    old_env = old.get("environment", {})
    new_env = new.get("environment", {})
    return all(old_env.get(k) == new_env.get(k) for k in ENV_KEYS)


#: Cross-environment relative tolerance for float invariants.  Within one
#: environment simulated time is bitwise-reproducible and compared exactly;
#: across environments transcendental kernels (``np.log`` SIMD dispatch,
#: libm builds) may legitimately differ in the last ulp, which is ~1e-16 —
#: ten million times smaller than this bound — while any real semantic
#: drift moves results by far more.
CROSS_ENV_RTOL = 1e-9


def _invariants_match(old, new, exact: bool) -> bool:
    """Compare invariant mappings; ulp-tolerant on floats when not exact."""
    if exact:
        return old == new
    if isinstance(old, dict) and isinstance(new, dict):
        return old.keys() == new.keys() and all(
            _invariants_match(old[k], new[k], exact) for k in old
        )
    if isinstance(old, float) or isinstance(new, float):
        try:
            o, n = float(old), float(new)
        except (TypeError, ValueError):
            return old == new
        scale = max(abs(o), abs(n))
        return abs(o - n) <= CROSS_ENV_RTOL * scale
    return old == new


@dataclass(frozen=True)
class CompareEntry:
    """One benchmark's verdict."""

    name: str
    status: str
    detail: str
    ratio: float | None = None
    old_s: float | None = None
    new_s: float | None = None


@dataclass(frozen=True)
class CompareResult:
    """All verdicts plus the aggregate outcome."""

    entries: tuple
    #: Whether wall times were compared at full strictness (same
    #: environment, or the caller asserted equivalence).
    same_env: bool = True

    @property
    def failures(self) -> list:
        return [e for e in self.entries if e.status == FAIL]

    @property
    def warnings(self) -> list:
        return [e for e in self.entries if e.status == WARN]

    @property
    def num_compared(self) -> int:
        """Entries whose wall times were actually ratio-compared."""
        return sum(1 for e in self.entries if e.ratio is not None)

    @property
    def ok(self) -> bool:
        """No failures AND a non-vacuous comparison.

        A candidate report that shares no benchmarks with the baseline
        (e.g. a partial ``--names`` run) must not pass the gate just
        because nothing could be measured.
        """
        return not self.failures and self.num_compared > 0


def compare_reports(
    old: dict,
    new: dict,
    threshold: float | None = None,
    stat: str = "median",
    assume_same_env: bool = False,
) -> CompareResult:
    """Diff two validated reports; ``threshold`` overrides per-bench values."""
    old_benches = old["benchmarks"]
    new_benches = new["benchmarks"]
    same_env = assume_same_env or environments_match(old, new)
    entries = []
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in new_benches:
            entries.append(CompareEntry(name, WARN, "missing from new report"))
            continue
        if name not in old_benches:
            entries.append(CompareEntry(name, WARN, "not in baseline report"))
            continue
        o, n = old_benches[name], new_benches[name]
        if o["size"] != n["size"]:
            entries.append(
                CompareEntry(name, WARN, f"size changed {o['size']} -> {n['size']}")
            )
            continue
        if not _invariants_match(o["invariants"], n["invariants"], exact=same_env):
            entries.append(
                CompareEntry(
                    name, FAIL,
                    f"invariant drift: {o['invariants']} -> {n['invariants']}",
                )
            )
            continue
        old_s = float(o["stats"][stat])
        new_s = float(n["stats"][stat])
        # The stricter of the two per-bench thresholds, so a change cannot
        # loosen its own gate by shipping a bigger threshold alongside the
        # slowdown it excuses.
        limit = (
            float(threshold)
            if threshold is not None
            else min(float(o["threshold"]), float(n["threshold"]))
        )
        if old_s <= 0.0:
            entries.append(CompareEntry(name, WARN, "baseline stat is zero",
                                        old_s=old_s, new_s=new_s))
            continue
        ratio = new_s / old_s
        if ratio > 1.0 + limit:
            if same_env:
                status = FAIL
                detail = f"{ratio:.2f}x slower than baseline (>{1 + limit:.2f}x)"
            else:
                status = WARN
                detail = (
                    f"{ratio:.2f}x slower, but environments differ — "
                    "re-baseline on this hardware to gate wall time"
                )
        elif ratio < 1.0 / (1.0 + limit):
            status, detail = WARN, f"{ratio:.2f}x of baseline — refresh the baseline"
        else:
            status, detail = PASS, f"{ratio:.2f}x of baseline"
        entries.append(
            CompareEntry(name, status, detail, ratio=ratio, old_s=old_s, new_s=new_s)
        )
    return CompareResult(entries=tuple(entries), same_env=same_env)
