"""Benchmark execution: warm-up, repeats, and robust wall-time statistics."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.registry import SIZES, Benchmark, all_benchmarks, get_benchmark


def robust_stats(samples: list) -> dict:
    """Summary statistics for a list of wall times (seconds).

    ``best`` and ``median`` are the regression-detection stats (robust to
    one-off scheduling noise); mean/max/stdev complete the picture.
    """
    if not samples:
        raise ValueError("need at least one sample")
    s = sorted(samples)
    n = len(s)
    mid = n // 2
    median = s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0
    mean = sum(s) / n
    var = sum((x - mean) ** 2 for x in s) / n
    return {
        "best": s[0],
        "median": median,
        "mean": mean,
        "max": s[-1],
        "stdev": math.sqrt(var),
    }


@dataclass(frozen=True)
class BenchTiming:
    """One benchmark's measured outcome."""

    bench: Benchmark
    size: str
    warmup: int
    wall_s: list
    invariants: dict = field(default_factory=dict)

    @property
    def stats(self) -> dict:
        return robust_stats(self.wall_s)

    def to_dict(self) -> dict:
        """The JSON form embedded in a suite report."""
        return {
            "group": self.bench.group,
            "description": self.bench.description,
            "source": self.bench.source,
            "size": self.size,
            "warmup": self.warmup,
            "repeats": len(self.wall_s),
            "threshold": self.bench.threshold,
            "wall_s": list(self.wall_s),
            "stats": self.stats,
            "invariants": dict(self.invariants),
        }


def run_benchmark(
    bench: Benchmark, size: str, repeats: int | None = None, warmup: int | None = None
) -> BenchTiming:
    """Time one benchmark: setup (untimed), warm-up, then ``repeats`` runs."""
    if size not in SIZES:
        raise ValueError(f"size must be one of {SIZES}, got {size!r}")
    context = bench.setup(size)
    n_warm = bench.warmup if warmup is None else warmup
    n_rep = bench.repeats if repeats is None else repeats
    if n_rep < 1:
        raise ValueError("repeats must be >= 1")
    result = None
    for _ in range(n_warm):
        result = bench.run(context)
    wall = []
    for _ in range(n_rep):
        t0 = time.perf_counter()
        result = bench.run(context)
        wall.append(time.perf_counter() - t0)
    invariants = (
        dict(bench.invariants(context, result)) if bench.invariants else {}
    )
    return BenchTiming(bench=bench, size=size, warmup=n_warm, wall_s=wall,
                       invariants=invariants)


def run_suite(
    size: str,
    names: list | None = None,
    repeats: int | None = None,
    progress: Callable[[int, int, BenchTiming], None] | None = None,
) -> list:
    """Run every registered benchmark (or ``names``) at ``size``."""
    selected = (
        [get_benchmark(n) for n in names]
        if names is not None
        else list(all_benchmarks().values())
    )
    timings = []
    for i, bench in enumerate(selected):
        timing = run_benchmark(bench, size, repeats=repeats)
        timings.append(timing)
        if progress is not None:
            progress(i + 1, len(selected), timing)
    return timings
