"""``repro.bench`` — the machine-readable benchmark subsystem.

A declarative registry of named benchmarks (``repro.bench.workloads``)
wrapping the repository's table/figure workloads and hot-path
micro-benchmarks, a runner with warm-up/repeats/robust stats, JSON report
emission (``BENCH_<suite>.json``), and a comparer that gates regressions
against per-bench thresholds.  Driven by ``repro bench run|list|compare``.
"""

from repro.bench.compare import (
    FAIL,
    PASS,
    WARN,
    CompareEntry,
    CompareResult,
    compare_reports,
    environments_match,
)
from repro.bench.registry import (
    SIZES,
    Benchmark,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    groups,
    register,
)
from repro.bench.report import (
    SCHEMA,
    build_report,
    environment_fingerprint,
    load_report,
    validate_report,
    write_report,
)
from repro.bench.runner import BenchTiming, robust_stats, run_benchmark, run_suite

__all__ = [
    "SIZES",
    "Benchmark",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "groups",
    "register",
    "BenchTiming",
    "robust_stats",
    "run_benchmark",
    "run_suite",
    "SCHEMA",
    "build_report",
    "environment_fingerprint",
    "load_report",
    "validate_report",
    "write_report",
    "PASS",
    "WARN",
    "FAIL",
    "CompareEntry",
    "CompareResult",
    "compare_reports",
    "environments_match",
]
