"""Declarative benchmark registry.

Every performance-relevant workload in the repository — the table/figure
regeneration benches under ``benchmarks/`` plus the hot-path
micro-benchmarks — is registered here as a named :class:`Benchmark` with
sized variants, so one runner can time any subset reproducibly and the
``benchmarks/bench_*.py`` scripts stay thin clients of the same entries.

Names are ``<group>.<bench>`` (``table3.boundary_exchange_model``,
``micro.engine_event_loop``).  Sizes are ``smoke`` (seconds-scale, run in
CI on every push) and ``full`` (the fidelity-grade variant the pytest
benches use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

#: The two standard variants every benchmark provides.
SIZES = ("smoke", "full")


@dataclass(frozen=True)
class Benchmark:
    """One registered workload.

    Attributes
    ----------
    name:
        Unique ``<group>.<bench>`` identifier.
    group:
        Grouping key (``table3``, ``figure5``, ``micro``, …).
    description:
        One-line summary shown by ``repro bench list``.
    source:
        Repository-relative path of the file this workload mirrors or
        exercises (a ``benchmarks/bench_*.py`` script or a hot-path
        module).
    setup:
        ``setup(size)`` builds the timed workload's inputs; its cost is
        *excluded* from timing.
    run:
        ``run(context)`` executes the timed workload once.
    invariants:
        Optional ``invariants(context, result)`` returning a JSON-able
        mapping of simulated/predicted quantities that must not drift
        between runs — ``repro bench compare`` fails when they change.
    warmup, repeats:
        Default repetition counts for the runner.
    threshold:
        Per-bench relative regression threshold for ``compare`` (0.30 =
        fail when more than 30 % slower than baseline; more than 30 %
        *faster* only warns, flagging a stale baseline).
    """

    name: str
    group: str
    description: str
    source: str
    setup: Callable[[str], Any]
    run: Callable[[Any], Any]
    invariants: Callable[[Any, Any], Mapping] | None = None
    warmup: int = 1
    repeats: int = 5
    threshold: float = 0.30

    def __post_init__(self) -> None:
        if "." not in self.name:
            raise ValueError(f"benchmark name must be <group>.<bench>: {self.name!r}")
        if not self.name.startswith(self.group + "."):
            raise ValueError(f"{self.name!r} must start with its group {self.group!r}")
        if self.warmup < 0 or self.repeats < 1:
            raise ValueError("need warmup >= 0 and repeats >= 1")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


_REGISTRY: dict[str, Benchmark] = {}
_LOADED = False


def register(bench: Benchmark) -> Benchmark:
    """Add ``bench`` to the registry (name must be unused)."""
    if bench.name in _REGISTRY:
        raise ValueError(f"benchmark {bench.name!r} already registered")
    _REGISTRY[bench.name] = bench
    return bench


def _ensure_loaded() -> None:
    """Import the workload definitions exactly once.

    ``_LOADED`` flips only after the import *succeeds*; a failed import
    rolls back any partial registrations so the next call retries cleanly
    instead of silently serving a truncated registry.
    """
    global _LOADED
    if not _LOADED:
        try:
            from repro.bench import workloads  # noqa: F401  (registers on import)
        except BaseException:
            _REGISTRY.clear()
            raise
        _LOADED = True


def all_benchmarks() -> dict[str, Benchmark]:
    """Name → benchmark, in registration order."""
    _ensure_loaded()
    return dict(_REGISTRY)


def benchmark_names(group: str | None = None) -> list[str]:
    """Registered names, optionally restricted to one group."""
    _ensure_loaded()
    return [n for n, b in _REGISTRY.items() if group is None or b.group == group]


def get_benchmark(name: str) -> Benchmark:
    """Look up one benchmark by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown benchmark {name!r}; registered: {known}") from None


def groups() -> list[str]:
    """Distinct groups, in first-registration order."""
    _ensure_loaded()
    seen: dict[str, None] = {}
    for bench in _REGISTRY.values():
        seen.setdefault(bench.group, None)
    return list(seen)
