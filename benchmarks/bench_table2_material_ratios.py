"""Table 2: material ratios in the general model.

The heterogeneous row comes from the input deck's global composition; the
homogeneous row is 100% per material by construction.  We regenerate the
ratios from all three decks and benchmark deck construction.
"""

import pytest

from repro.analysis import TextTable
from repro.mesh import MATERIAL_NAMES, build_deck, material_fractions
from repro.perfmodel import TABLE2_RATIOS


def test_table2_report(report_writer):
    table = TextTable(
        "Table 2 (reproduced): ratio of materials in the Krak general model",
        ["Type"] + list(MATERIAL_NAMES),
    )
    table.add_row("Paper hetero.", *[f"{r*100:.1f}%" for r in TABLE2_RATIOS])
    for name in ("small", "medium", "large"):
        fracs = material_fractions(build_deck(name))
        table.add_row(
            f"{name} deck", *[f"{f*100:.1f}%" for f in fracs]
        )
    table.add_row("Homo.", *["100%"] * 4)
    report_writer("table2_material_ratios", table.render())


@pytest.mark.parametrize("name", ["small", "medium", "large"])
def test_deck_ratios_close_to_table2(name):
    """Each deck realises the Table 2 ratios within column quantisation."""
    fracs = material_fractions(build_deck(name))
    for got, want in zip(fracs, TABLE2_RATIOS):
        assert got == pytest.approx(want, abs=0.011)


def test_larger_decks_converge_to_table2():
    """Finer grids quantise the radial layers better."""
    err_small = max(
        abs(g - w)
        for g, w in zip(material_fractions(build_deck("small")), TABLE2_RATIOS)
    )
    err_large = max(
        abs(g - w)
        for g, w in zip(material_fractions(build_deck("large")), TABLE2_RATIOS)
    )
    assert err_large <= err_small


@pytest.mark.benchmark(group="table2")
def test_bench_deck_construction(benchmark, registry_bench):
    """Medium-deck construction speed (mesh + materials)."""
    deck = registry_bench(benchmark, "table2.deck_construction")[2]
    assert deck.num_cells == 204800
