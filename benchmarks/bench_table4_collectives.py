"""Table 4: collective-communication operations per iteration.

Regenerates the census from the implemented phase structure and tabulates
the Equations (8)–(10) model times across processor counts.
"""

import pytest

from repro.analysis import TextTable
from repro.machine import QSNET_LIKE
from repro.machine.costdb import table4_census
from repro.perfmodel import (
    allreduce_total_time,
    broadcast_time,
    collectives_time,
    gather_total_time,
)


def test_table4_report(report_writer):
    census = table4_census()
    table = TextTable(
        "Table 4 (reproduced): collective communication operations per iteration",
        ["Type", "Count", "Size (bytes)"],
    )
    for op, sizes in census.items():
        for size, count in sorted(sizes.items()):
            table.add_row(f"{op}()", count, size)
    text = table.render()

    times = TextTable(
        "Modelled collective time per iteration (Equations 8-10)",
        ["PEs", "Bcast [us]", "Allreduce [us]", "Gather [us]", "Total [us]"],
    )
    for p in (16, 64, 128, 256, 512, 1024):
        times.add_row(
            p,
            broadcast_time(QSNET_LIKE, p) * 1e6,
            allreduce_total_time(QSNET_LIKE, p) * 1e6,
            gather_total_time(QSNET_LIKE, p) * 1e6,
            collectives_time(QSNET_LIKE, p) * 1e6,
        )
    report_writer("table4_collectives", text + "\n\n" + times.render())


def test_census_matches_paper():
    census = table4_census()
    assert census["MPI_Bcast"] == {4: 3, 8: 3}
    assert census["MPI_Allreduce"] == {4: 9, 8: 13}
    assert census["MPI_Gather"] == {32: 1}


def test_allreduce_dominates_collectives():
    """22 allreduces × 2 tree traversals dwarf 6 bcasts + 1 gather."""
    p = 256
    assert allreduce_total_time(QSNET_LIKE, p) > 3 * broadcast_time(QSNET_LIKE, p)


def test_simulated_collectives_match_model(cluster):
    """The DES charges exactly the modelled time for an isolated collective
    (the model and simulator share the binary-tree abstraction)."""
    from repro.simmpi import Allreduce, Compute, Engine, SetPhase, allreduce_time

    def prog(rank):
        yield SetPhase(0)
        yield Compute(0.0)
        yield Allreduce(1.0, "sum", 8)

    res = Engine(cluster, 64, 1).run(prog)
    assert res.makespan == pytest.approx(allreduce_time(cluster.network, 64, 8))


@pytest.mark.benchmark(group="table4")
def test_bench_collectives_model(benchmark, registry_bench):
    times = registry_bench(benchmark, "table4.collectives_model")[2]
    assert all(t > 0 for t in times)
