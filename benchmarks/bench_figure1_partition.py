"""Figure 1: irregular partitioning of 3 200 cells on 16 processors.

Regenerates the figure as an ASCII cell map (partition ids over the grid,
material-layer boundaries marked) plus partition-quality statistics, and
benchmarks the multilevel partitioner itself.
"""

import pytest

from repro.analysis import TextTable
from repro.mesh import MATERIAL_NAMES, build_face_table
from repro.partition import cached_partition, dual_graph_of_mesh, partition_quality

_GLYPHS = "0123456789abcdef"


def test_figure1_report(small_deck, report_writer):
    faces = build_face_table(small_deck.mesh)
    part = cached_partition(small_deck, 16, seed=1, faces=faces)
    g = dual_graph_of_mesh(small_deck.mesh, faces)
    q = partition_quality(g, part)

    nx, ny = small_deck.mesh.nx, small_deck.mesh.ny
    grid = part.cell_rank.reshape(ny, nx)
    mats = small_deck.cell_material.reshape(ny, nx)

    lines = ["Figure 1 (reproduced): 3200 cells on 16 processors", ""]
    # Downsample rows for readability; mark material boundaries with '|'.
    for j in range(ny - 1, -1, -2):
        row = []
        for i in range(nx):
            row.append(_GLYPHS[grid[j, i] % 16])
            if i + 1 < nx and mats[j, i] != mats[j, i + 1]:
                row.append("|")
        lines.append("".join(row))
    lines.append("")
    lines.append(
        "materials (left to right): "
        + " | ".join(MATERIAL_NAMES)
    )
    lines.append("")
    stats = TextTable(
        "Partition quality (Metis-analogue multilevel k-way)",
        ["ranks", "edge cut", "imbalance", "mean nbrs", "min", "max"],
    )
    stats.add_row(
        q.num_ranks, q.edge_cut, q.imbalance, q.mean_neighbors, q.min_neighbors, q.max_neighbors
    )
    lines.append(stats.render())
    report_writer("figure1_partition", "\n".join(lines))

    # The partition must be irregular (the paper's Section 2 point): varying
    # cell counts per material per rank.
    census = part.material_census(small_deck.cell_material, 4)
    assert (census > 0).sum() > 16  # some ranks hold more than one material


@pytest.mark.benchmark(group="figure1")
def test_bench_multilevel_partitioner(benchmark, registry_bench):
    """Partitioner speed on the small deck at 16 ranks."""
    part = registry_bench(benchmark, "figure1.multilevel_partition")[2]
    assert part.num_ranks == 16


@pytest.mark.benchmark(group="figure1")
def test_bench_boundary_census(benchmark, registry_bench):
    """Boundary-census construction cost (used by every validation run)."""
    census = registry_bench(benchmark, "figure1.boundary_census")[2]
    assert len(census.pairs) > 0
