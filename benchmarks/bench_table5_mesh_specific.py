"""Table 5: mesh-specific ("input-specific") model validation.

Small and medium decks at 16 / 64 / 128 processors.  As in the paper's
Section 3.1, the cost curves come from the *linear-system* method: the
medium deck is run at several processor counts and per-phase NNLS systems
recover the per-cell cost of each material.  The small deck's cells-per-
processor then fall near/below the cost-curve knee, reproducing the paper's
headline observation: large errors at the knee, ≤10 % for large local cell
counts.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import MeshSpecificModel, calibrate_linear_system

PE_COUNTS = (16, 64, 128)
#: Paper's Table 5 for side-by-side comparison: (measured ms, predicted ms, error).
PAPER_TABLE5 = {
    ("small", 16): (27, 43, -0.590),
    ("small", 64): (88, 41, 0.527),
    ("small", 128): (28, 30, -0.100),
    ("medium", 16): (310, 290, 0.059),
    ("medium", 64): (88, 89, -0.008),
    ("medium", 128): (61, 59, 0.045),
}


@pytest.fixture(scope="module")
def linear_system_table(cluster, medium_deck):
    """Cost curves from the paper's second calibration method."""
    faces = build_face_table(medium_deck.mesh)
    partitions = [
        cached_partition(medium_deck, p, seed=1, faces=faces) for p in (16, 64, 256)
    ]
    return calibrate_linear_system(cluster, medium_deck, partitions)


@pytest.fixture(scope="module")
def table5_rows(cluster, small_deck, medium_deck, linear_system_table):
    model_template = lambda: MeshSpecificModel(
        table=linear_system_table, network=cluster.network
    )
    rows = []
    for deck in (small_deck, medium_deck):
        faces = build_face_table(deck.mesh)
        for p in PE_COUNTS:
            part = cached_partition(deck, p, seed=1, faces=faces)
            census = build_workload_census(deck, part, faces)
            measured = measure_iteration_time(
                deck, part, cluster=cluster, faces=faces, census=census
            ).seconds
            pred = model_template().predict(census)
            rows.append((deck.name, p, measured, pred.total, pred.error_vs(measured)))
    return rows


def test_table5_report(table5_rows, report_writer):
    table = TextTable(
        "Table 5 (reproduced): validation results for the mesh-specific model",
        [
            "Problem",
            "PEs",
            "Meas. (ms)",
            "Pred. (ms)",
            "Error",
            "paper meas.",
            "paper err.",
        ],
    )
    for name, p, meas, pred, err in table5_rows:
        pm, _, pe = PAPER_TABLE5[(name, p)]
        table.add_row(
            name,
            p,
            meas * 1e3,
            pred * 1e3,
            f"{err * 100:+.1f}%",
            pm,
            f"{pe * 100:+.1f}%",
        )
    report_writer("table5_mesh_specific", table.render())


def test_small_deck_knee_errors_large(table5_rows):
    """The paper's shape: the small deck (near the knee) mispredicts badly
    somewhere (paper: −59 % / +53 %)."""
    small_errors = [abs(err) for name, _, _, _, err in table5_rows if name == "small"]
    assert max(small_errors) > 0.25


def test_medium_deck_accurate(table5_rows):
    """Away from the knee the model is ≤ ~10 % (paper: 5.9/−0.8/4.5 %)."""
    medium_errors = [
        abs(err) for name, _, _, _, err in table5_rows if name == "medium"
    ]
    assert max(medium_errors) < 0.15


def test_medium_strong_scaling_shape(table5_rows):
    """Measured medium times fall with processor count (310 → 88 → 61 ms
    in the paper; same ordering here)."""
    medium = [meas for name, _, meas, _, _ in table5_rows if name == "medium"]
    assert medium[0] > medium[1] > medium[2]


@pytest.mark.benchmark(group="table5")
def test_bench_mesh_specific_predict(benchmark, registry_bench):
    """Model evaluation speed with exact partition information."""
    pred = registry_bench(benchmark, "table5.mesh_specific_predict")[2]
    assert pred.total > 0
