"""Figure 5: general-model validation across processor counts.

Measured vs homogeneous vs heterogeneous iteration times, medium and large
decks, P = 1 … 1024 in powers of two — the log-log scaling curves of the
paper's Figure 5, including the heterogeneous variant's over-prediction at
scale (per-material boundary messages whose latency dominates).
"""

import os

import numpy as np
import pytest

from repro.analysis import format_series, scaling_sweep, sweep_store

MAX_RANKS = 1024


@pytest.fixture(scope="module")
def figure5_sweeps(cluster, medium_deck, large_deck, fine_cost_table):
    """Both decks' scaling sweeps, parallel and resumable.

    The dominant cost of this module is the 22 simulated points; they run
    on the sweep engine so repeat benchmark sessions replay them from the
    result store, and ``REPRO_SWEEP_JOBS=N`` fans fresh points out to N
    worker processes (results are identical to serial by construction).
    """
    jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "1"))
    sweeps = {}
    for deck in (medium_deck, large_deck):
        sweeps[deck.name] = scaling_sweep(
            deck,
            cluster,
            fine_cost_table,
            max_ranks=MAX_RANKS,
            seed=1,
            jobs=jobs,
            store=sweep_store(),
        )
    return sweeps


def test_figure5_report(figure5_sweeps, report_writer):
    lines = [
        "Figure 5 (reproduced): general model validation, iteration time [s] "
        "vs processor count"
    ]
    for name, points in figure5_sweeps.items():
        ranks = [p.num_ranks for p in points]
        lines.append("")
        lines.append(f"=== {name} problem ===")
        lines.append(
            format_series(
                "Measured", ranks, [p.measured for p in points], "PEs", "s"
            )
        )
        lines.append(
            format_series(
                "Homogeneous",
                ranks,
                [p.predicted["homogeneous"] for p in points],
                "PEs",
                "s",
            )
        )
        lines.append(
            format_series(
                "Heterogeneous",
                ranks,
                [p.predicted["heterogeneous"] for p in points],
                "PEs",
                "s",
            )
        )
    report_writer("figure5_scaling", "\n".join(lines))


def test_measured_curve_strong_scales_then_flattens(figure5_sweeps):
    """Iteration time drops with P but departs from ideal scaling at large
    P (overhead + collectives floor) — the Figure 5 shape.  The large deck
    flattens later (more cells per PE), so the late-speedup bound is
    per-deck."""
    for name, points in figure5_sweeps.items():
        times = np.array([p.measured for p in points])
        # Overall downward from 1 to max ranks:
        assert times[0] > times[-1]
        # Early speedup near-ideal:
        early = times[0] / times[2]  # P=1 -> 4
        assert early > 2.5
        # Late speedup far from the ideal 4x (the flattening):
        late = times[-3] / times[-1]  # max/4 -> max
        assert late < 3.0 if name == "large" else late < 2.0


def test_homogeneous_tracks_measured(figure5_sweeps):
    """Homogeneous predictions stay within 25 % at P ≥ 64 (paper: within
    8 % at the Table 6 points; the sweep includes untuned P values)."""
    for points in figure5_sweeps.values():
        for p in points:
            if p.num_ranks >= 64:
                assert abs(p.error("homogeneous")) < 0.25, p


def test_heterogeneous_overpredicts_at_scale(figure5_sweeps):
    """Section 5.2: at large P the heterogeneous variant's per-material
    boundary messages overtake its smaller compute mix, so it crosses above
    the homogeneous variant and the measured curve.  The crossover depends
    on cells/PE: the medium deck (200 cells/PE at 1024) is past it; the
    large deck (800 cells/PE) is approaching it, so we assert the trend."""
    medium_last = figure5_sweeps["medium"][-1]  # P = 1024
    assert medium_last.predicted["heterogeneous"] > medium_last.predicted["homogeneous"]
    assert medium_last.predicted["heterogeneous"] > medium_last.measured

    for name, points in figure5_sweeps.items():
        # The het/homo ratio rises monotonically over the last decade of P.
        tail = points[-4:]
        ratios = [
            p.predicted["heterogeneous"] / p.predicted["homogeneous"] for p in tail
        ]
        assert ratios == sorted(ratios), name


def test_heterogeneous_exact_serially(figure5_sweeps):
    """At P = 1 the subgrid really has the global material ratios, so the
    heterogeneous variant is near-exact while homogeneous (worst material
    everywhere) over-predicts."""
    for name, points in figure5_sweeps.items():
        first = points[0]
        assert first.num_ranks == 1
        assert abs(first.error("heterogeneous")) < 0.05, name
        assert first.predicted["homogeneous"] > first.predicted["heterogeneous"], name


@pytest.mark.benchmark(group="figure5")
def test_bench_scaling_sweep_models_only(benchmark, registry_bench):
    """Model-side sweep cost (what the paper calls 'rapid model evaluation'):
    both general variants across 11 processor counts."""
    result = registry_bench(benchmark, "figure5.scaling_models_only")[2]
    assert len(result) == 11
