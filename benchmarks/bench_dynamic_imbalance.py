"""Extension: time-evolving workload + dynamic repartitioning scenarios.

The paper's Section 2.1 workload *evolves*: the programmed burn front moves
through the HE material, shifting per-cell cost and degrading any static
partition.  This bench runs the detonation deck under three repartitioning
policies — ``never`` (the static-partition control), ``every_n`` (fixed
cadence), and ``imbalance_threshold`` (repartition when weighted load
imbalance exceeds a bound) — and reports the load-imbalance trajectory and
the steady-state iteration time of each, including the modelled repartition
cost (census allgather + cell-migration messages).
"""

import pytest

from repro.analysis import TextTable, format_series
from repro.hydro import DynamicConfig, run_krak
from repro.mesh import build_face_table
from repro.partition import (
    EveryNPolicy,
    ImbalanceThresholdPolicy,
    NeverPolicy,
    cached_partition,
)

NUM_RANKS = 16
ITERATIONS = 16
WARMUP = 1
#: Strong burn-cost contrast so partition quality, not noise, dominates.
BURN_MULTIPLIER = 8.0

POLICIES = (
    NeverPolicy(),
    EveryNPolicy(period=4),
    ImbalanceThresholdPolicy(threshold=1.15),
)


@pytest.fixture(scope="module")
def dynamic_runs(cluster, small_deck):
    """Per policy: the steady-state iteration time and the run's
    :class:`~repro.hydro.dynamic.DynamicRunInfo` (one simulation each)."""
    faces = build_face_table(small_deck.mesh)
    part = cached_partition(small_deck, NUM_RANKS, seed=1, faces=faces)
    runs = {}
    for policy in POLICIES:
        config = DynamicConfig(policy=policy, burn_multiplier=BURN_MULTIPLIER)
        run = run_krak(
            small_deck,
            part,
            cluster=cluster,
            iterations=ITERATIONS,
            faces=faces,
            dynamic=config,
        )
        runs[policy.name] = (run.mean_iteration_time(WARMUP), run.dynamic)
    return runs


def test_dynamic_imbalance_report(dynamic_runs, report_writer):
    lines = [
        "Extension: burn-front workload evolution vs repartitioning policy "
        f"(small deck, {NUM_RANKS} PEs, burning cells x{BURN_MULTIPLIER:g})"
    ]
    table = TextTable(
        "steady-state iteration time by policy",
        ["policy", "iter (ms)", "repartitions", "cells moved", "peak imbalance"],
    )
    for name, (seconds, info) in dynamic_runs.items():
        table.add_row(
            name,
            seconds * 1e3,
            info.num_repartitions,
            info.cells_moved,
            max(r.imbalance for r in info.records),
        )
    lines.append(table.render())
    for name, (_, info) in dynamic_runs.items():
        times, imbalances = info.imbalance_series()
        lines.append("")
        lines.append(
            format_series(f"imbalance vs time [{name}]", times, imbalances, "s", "")
        )
    report_writer("dynamic_imbalance", "\n".join(lines))


def test_static_partition_degrades_as_front_moves(dynamic_runs):
    """Under ``never`` the burn front drives weighted imbalance well above
    its initial (cell-balanced) value — the paper's motivating observation."""
    _, info = dynamic_runs["never"]
    assert info.num_repartitions == 0
    first = info.records[0].imbalance
    peak = max(r.imbalance for r in info.records)
    assert peak > 1.5 * first


def test_threshold_policy_clamps_imbalance(dynamic_runs):
    """The imbalance_threshold policy keeps the charged imbalance near its
    bound while the control's trajectory escapes it."""
    _, never = dynamic_runs["never"]
    _, clamped = dynamic_runs["imbalance_threshold"]
    assert clamped.num_repartitions >= 1
    assert max(r.imbalance for r in clamped.records) < max(
        r.imbalance for r in never.records
    )


def test_threshold_repartitioning_beats_never(dynamic_runs):
    """The acceptance bar: repartitioning on imbalance measurably reduces
    steady-state iteration time versus the static partition, even after
    paying the modelled repartition cost."""
    t_never = dynamic_runs["never"][0]
    t_thresh = dynamic_runs["imbalance_threshold"][0]
    assert t_thresh < 0.95 * t_never  # >= 5% faster


def test_cadence_policy_sits_between(dynamic_runs):
    """A fixed cadence repartitions too (cells move, time improves or at
    least does not regress past the control)."""
    _, every = dynamic_runs["every_n"]
    assert every.num_repartitions >= 2
    assert every.cells_moved > 0
    t_never = dynamic_runs["never"][0]
    t_every = dynamic_runs["every_n"][0]
    assert t_every < 1.02 * t_never


@pytest.mark.benchmark(group="dynamic-imbalance")
def test_bench_dynamic_run(benchmark, registry_bench):
    """Cost of one fully dynamic simulated run (threshold policy)."""
    run = registry_bench(benchmark, "dynamic.imbalance_run", rounds=1)[2]
    assert run.dynamic.num_repartitions >= 1
