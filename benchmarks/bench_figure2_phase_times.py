"""Figure 2: computation time by phase on 256 processors, 65 536 cells.

"MPI communication time is not included.  Because of the fairly large
processor count, subdomains are homogeneous in terms of materials" — we
reproduce the grouped-by-material phase times by taking, per phase and per
material, the maximum compute time over the ranks dominated by that
material.
"""

import numpy as np
import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, run_krak
from repro.machine import NUM_PHASES
from repro.mesh import MATERIAL_NAMES, NUM_MATERIALS, build_deck, build_face_table
from repro.partition import cached_partition

#: Ranks whose cells are ≥ this fraction one material count as that material.
DOMINANCE = 0.9


@pytest.fixture(scope="module")
def figure2_run(cluster):
    deck = build_deck((256, 256))  # 65 536 cells
    faces = build_face_table(deck.mesh)
    part = cached_partition(deck, 256, seed=1, faces=faces)
    census = build_workload_census(deck, part, faces)
    run = run_krak(
        deck, part, cluster=cluster, iterations=2, faces=faces, census=census
    )
    return deck, part, census, run


def test_figure2_report(figure2_run, report_writer):
    deck, part, census, run = figure2_run
    compute = run.result.trace.compute / run.iterations  # (ranks, phases)
    counts = census.material_counts
    dominant = np.where(
        counts.max(axis=1) >= DOMINANCE * counts.sum(axis=1),
        counts.argmax(axis=1),
        -1,
    )

    table = TextTable(
        "Figure 2 (reproduced): computation time by phase, no MPI, 256 PEs, "
        "65,536 cells [ms per iteration]",
        ["Phase"] + list(MATERIAL_NAMES),
    )
    per_phase_mat = np.zeros((NUM_PHASES, NUM_MATERIALS))
    for m in range(NUM_MATERIALS):
        ranks = np.flatnonzero(dominant == m)
        if ranks.size:
            per_phase_mat[:, m] = compute[ranks].max(axis=0)
    for p in range(NUM_PHASES):
        table.add_row(p + 1, *[per_phase_mat[p, m] * 1e3 for m in range(NUM_MATERIALS)])
    report_writer("figure2_phase_times", table.render())

    # The paper's observations: most ranks are homogeneous at 256 PEs, and
    # phase 14 (index 13) is material-dependent (foam slowest, HE fastest;
    # at 256 cells/PE the per-phase overhead compresses the total-time
    # spread, so assert ordering plus a modest ratio).
    assert (dominant >= 0).mean() > 0.5
    row = per_phase_mat[13]
    present = row[row > 0]
    assert present.max() / present.min() > 1.1
    assert row[2] > row[0]  # foam > HE gas in the strength phase


def test_phase14_material_dependence(figure2_run):
    """Foam-dominated ranks are slowest in the strength phase."""
    _, _, census, run = figure2_run
    compute = run.result.trace.compute / run.iterations
    counts = census.material_counts
    dominant = counts.argmax(axis=1)
    foam = np.flatnonzero(dominant == 2)
    he = np.flatnonzero(dominant == 0)
    assert compute[foam, 13].mean() > compute[he, 13].mean()


@pytest.mark.benchmark(group="figure2")
def test_bench_census_timing_run(benchmark, registry_bench):
    """Execution-driven simulation speed at 256 ranks."""
    bench, ctx, result = registry_bench(
        benchmark, "figure2.census_timing_run", rounds=3
    )
    assert ctx["part"].num_ranks == 256
    assert result > 0
