"""Ablation: the no-overlap communication approximation.

Equations (5)–(7) sum every message serially; the real application (and our
simulator) overlaps asynchronous sends to multiple neighbours.  This
ablation quantifies the resulting over-prediction of point-to-point time —
one of the approximations the paper explicitly accepts.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, run_krak
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import MeshSpecificModel

#: Phases with point-to-point communication (0-based): BE + 3 ghost phases.
P2P_PHASES = (1, 3, 4, 6)


@pytest.fixture(scope="module")
def overlap_rows(cluster, small_deck, fine_cost_table):
    faces = build_face_table(small_deck.mesh)
    rows = []
    for p in (16, 64, 128):
        part = cached_partition(small_deck, p, seed=1, faces=faces)
        census = build_workload_census(small_deck, part, faces)
        run = run_krak(
            small_deck, part, cluster=cluster, iterations=3, faces=faces, census=census
        )
        comm = run.result.trace.comm / run.iterations
        # Simulated p2p: max-over-ranks comm time in the p2p phases; the
        # collectives embedded there are common to both sides of the
        # comparison, so subtract the modelled collective share is not
        # needed for the *ratio* trend but we keep raw numbers.
        simulated = float(sum(comm[:, ph].max() for ph in P2P_PHASES))
        model = MeshSpecificModel(table=fine_cost_table, network=cluster.network)
        be, gn = model.point_to_point(census)
        rows.append((p, simulated, be + gn))
    return rows


def test_overlap_ablation_report(overlap_rows, report_writer):
    table = TextTable(
        "Ablation: message overlap (simulated, overlapping) vs the serial-sum "
        "model (small deck)",
        [
            "PEs",
            "simulated p2p phases (ms)",
            "modelled p2p, no overlap (ms)",
            "model/simulated",
        ],
    )
    for p, sim, modelled in overlap_rows:
        table.add_row(p, sim * 1e3, modelled * 1e3, modelled / sim)
    report_writer("ablation_overlap", table.render())


def test_model_overpredicts_p2p(overlap_rows):
    """Serial summation over-charges point-to-point time; note the
    simulated column also contains the phase-end allreduces, so the pure
    p2p over-prediction is even larger than the printed ratio."""
    p, sim, modelled = overlap_rows[-1]  # 128 PEs: smallest messages
    assert modelled > 0.25 * sim  # sanity: same order of magnitude

    # Isolate the trend: the model/simulated ratio grows with PE count as
    # messages shrink and latency dominates.
    ratios = [m / s for _, s, m in overlap_rows]
    assert ratios[-1] >= ratios[0] * 0.8


def test_overlap_savings_exist(cluster, small_deck, fine_cost_table):
    """Direct check: posting N sends costs less wall time than N serial
    message times in the simulator."""
    from repro.simmpi import Compute, Engine, Isend, Recv, SetPhase, WaitSends

    nbytes = 120
    n_msgs = 6

    def prog(rank):
        yield SetPhase(0)
        if rank == 0:
            for i in range(n_msgs):
                yield Isend(1, i, nbytes)
            yield WaitSends()
        else:
            for i in range(n_msgs):
                yield Recv(0, i)

    res = Engine(cluster, 2, 1).run(prog)
    serial_model = n_msgs * cluster.network.tmsg(nbytes)
    assert res.makespan < serial_model


@pytest.mark.benchmark(group="ablation-overlap")
def test_bench_p2p_model_evaluation(benchmark, registry_bench):
    be, gn = registry_bench(benchmark, "ablation.p2p_model_evaluation")[2]
    assert be > 0 and gn > 0
