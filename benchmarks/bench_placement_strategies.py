"""Extension: topology-aware rank placement on the SMP machine.

The 4-way-SMP machine makes rank→node placement a scenario axis: on-node
messages ride shared memory (cheaper wire *and* cheaper per-message host
overheads), so which ranks share a node shifts both traffic and the
critical rank's cost.  This bench measures one configuration under each
placement strategy and checks the communication-aware optimizer's margin
over the launcher's block default — the makespan-aligned objective (max
per-rank priced p2p cost), not raw inter-node bytes, is what buys time.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.machine import es45_like_cluster
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.placement import (
    inter_node_bytes,
    make_placement,
    placement_comm_cost,
    rank_comm_bytes,
    rank_pair_times,
    total_pair_bytes,
)

#: The scenario: small deck, 16 ranks on 4-way nodes, fast-CPU what-if
#: (speed 8 makes the machine communication-bound, where placement lives),
#: shared-memory host overheads on-node.
RANKS = 16
RANKS_PER_NODE = 4
SPEED = 8.0


@pytest.fixture(scope="module")
def placement_rows(small_deck):
    faces = build_face_table(small_deck.mesh)
    partition = cached_partition(small_deck, RANKS, seed=1, faces=faces)
    census = build_workload_census(small_deck, partition, faces)
    cluster = es45_like_cluster(speed=SPEED).with_smp(
        ranks_per_node=RANKS_PER_NODE,
        intra_send_overhead=0.5e-6,
        intra_recv_overhead=0.7e-6,
    )
    graph = rank_comm_bytes(census)
    total = total_pair_bytes(graph)
    t_intra, t_inter = rank_pair_times(census, cluster)

    rows = []
    for strategy in ("block", "round-robin", "random:1", "comm-aware"):
        placement = make_placement(
            strategy,
            num_ranks=RANKS,
            ranks_per_node=RANKS_PER_NODE,
            census=census,
            cluster=cluster,
        )
        seconds = measure_iteration_time(
            small_deck, partition, cluster=cluster.with_placement(placement),
            faces=faces, census=census,
        ).seconds
        share = inter_node_bytes(placement, graph) / total
        max_cost, _ = placement_comm_cost(placement.node_of_rank, t_intra, t_inter)
        rows.append((placement.name, share, max_cost, seconds))
    return rows


def test_placement_report(placement_rows, report_writer):
    table = TextTable(
        f"Extension: rank placement, small deck, {RANKS} ranks "
        f"({RANKS_PER_NODE}/node, CPU x{SPEED:g})",
        ["strategy", "inter-node share", "max rank p2p (ms)",
         "measured (ms)", "vs block"],
    )
    t_block = placement_rows[0][3]
    for name, share, max_cost, seconds in placement_rows:
        table.add_row(
            name,
            f"{share * 100:.0f}%",
            max_cost * 1e3,
            seconds * 1e3,
            f"{(t_block - seconds) / t_block * 100:+.2f}%",
        )
    report_writer("placement_strategies", table.render())


def test_comm_aware_beats_block(placement_rows):
    """The acceptance margin: optimized placement wins simulated time."""
    by_name = {name: seconds for name, _, _, seconds in placement_rows}
    assert by_name["comm-aware"] < by_name["block"]


def test_comm_aware_lowers_max_rank_cost(placement_rows):
    """The optimizer's objective moved: the critical rank got cheaper."""
    by_name = {name: max_cost for name, _, max_cost, _ in placement_rows}
    assert by_name["comm-aware"] < by_name["block"]


def test_block_beats_round_robin(placement_rows):
    """Spatially-coherent rank ids make cyclic placement an adversary."""
    by_name = {name: seconds for name, _, _, seconds in placement_rows}
    assert by_name["block"] < by_name["round-robin"]


@pytest.mark.benchmark(group="placement")
def test_bench_smp_scenario(benchmark, registry_bench):
    """Block vs comm-aware measured runs (the registry scenario entry)."""
    _, _, (t_block, t_opt) = registry_bench(benchmark, "placement.smp_scenario")
    assert 0 < t_opt < t_block


@pytest.mark.benchmark(group="placement")
def test_bench_comm_aware_optimize(benchmark, registry_bench):
    """Optimizer end to end on a census communication graph."""
    bench, ctx, placement = registry_bench(benchmark, "placement.comm_aware_optimize")
    inv = bench.invariants(ctx, placement)
    assert inv["optimized_max_rank_cost_s"] <= inv["block_max_rank_cost_s"]


@pytest.mark.benchmark(group="placement")
def test_bench_pairwise_pricing(benchmark, registry_bench):
    """Batched endpoint-aware Tmsg pricing hot path."""
    bench, ctx, total = registry_bench(benchmark, "placement.pairwise_pricing")
    # Bitwise contract: each batched element equals the scalar pair price.
    h = ctx["hierarchy"]
    batched = h.tmsg_pairs(ctx["a"][:64], ctx["b"][:64], ctx["sizes"][:64])
    for got, a, b, s in zip(batched, ctx["a"][:64], ctx["b"][:64], ctx["sizes"][:64]):
        assert got == h.tmsg_pair(int(a), int(b), float(s))
    assert total > 0
