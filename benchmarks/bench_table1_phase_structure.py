"""Table 1: the 15-phase iteration structure (actions + sync points).

Regenerates the paper's Table 1 from the implemented application by
inspecting the request stream of one rank, then benchmarks the simulator's
iteration throughput on the small deck.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census
from repro.hydro.phases import KrakProgram
from repro.machine import (
    COMM_BOUNDARY_EXCHANGE,
    COMM_GHOST_8,
    COMM_GHOST_16,
    NUM_PHASES,
    PHASE_BCASTS,
    PHASE_COMM_KIND,
    PHASE_GATHERS,
    PHASE_SYNC_POINTS,
)
from repro.mesh import build_face_table
from repro.partition import cached_partition

_ACTION_LABEL = {
    COMM_BOUNDARY_EXCHANGE: "Boundary exchange",
    COMM_GHOST_8: "Ghost node updates (8 bytes)",
    COMM_GHOST_16: "Ghost node updates (16 bytes)",
}


def _phase_action(phase: int) -> str:
    parts = []
    if phase in PHASE_BCASTS:
        sizes = ", ".join(f"{s} bytes" for s in PHASE_BCASTS[phase])
        parts.append(f"Broadcast ({sizes})")
    kind = PHASE_COMM_KIND[phase]
    if kind in _ACTION_LABEL:
        parts.append(_ACTION_LABEL[kind])
    if phase in PHASE_GATHERS:
        sizes = ", ".join(f"{s} bytes" for s in PHASE_GATHERS[phase])
        parts.append(f"Gather ({sizes})")
    return "; ".join(parts) if parts else "Computation only"


def test_table1_report(report_writer):
    """Emit the reproduced Table 1."""
    table = TextTable(
        "Table 1: Summary of Krak activities by phase (reproduced)",
        ["Phase", "Action", "Sync points"],
    )
    for p in range(NUM_PHASES):
        table.add_row(p + 1, _phase_action(p), PHASE_SYNC_POINTS[p])
    report_writer("table1_phase_structure", table.render())
    assert sum(PHASE_SYNC_POINTS) == 22


def test_request_stream_matches_table1(small_deck):
    """The executed program visits every phase with the Table 1 comm ops."""
    faces = build_face_table(small_deck.mesh)
    part = cached_partition(small_deck, 16, seed=1, faces=faces)
    census = build_workload_census(small_deck, part, faces)
    from repro.machine import es45_like_cluster
    from repro.simmpi import api

    prog = KrakProgram(0, census, es45_like_cluster().node, iterations=1)
    gen = prog()
    phases_seen = set()
    req = gen.send(None)
    try:
        while True:
            if isinstance(req, api.SetPhase):
                phases_seen.add(req.phase)
            value = None
            if isinstance(req, api.Recv):
                value = (0, None)
            elif isinstance(req, (api.Allreduce, api.Bcast)):
                value = req.value if req.value is not None else 0.0
            elif isinstance(req, api.Gather):
                value = [req.value]
            req = gen.send(value)
    except StopIteration:
        pass
    assert phases_seen == set(range(NUM_PHASES))


@pytest.mark.benchmark(group="table1")
def test_bench_iteration_simulation(benchmark, registry_bench):
    """Simulator throughput: full 15-phase iterations on 16 ranks."""
    makespan = registry_bench(benchmark, "table1.iteration_simulation")[2]
    assert makespan > 0
