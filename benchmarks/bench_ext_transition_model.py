"""Extension: the heterogeneity-transition model (paper's declared future work).

Section 3.2 leaves the heterogeneous→homogeneous transition unmodelled.
This bench validates our :class:`~repro.perfmodel.transition.TransitionModel`
against the simulator across the full Figure-5 sweep and shows it matching
the heterogeneous variant's small-P accuracy *and* the homogeneous
variant's large-P accuracy simultaneously.
"""

import numpy as np
import pytest

from repro.analysis import TextTable, mean_absolute_percentage_error
from repro.hydro import build_workload_census, measure_iteration_time
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import GeneralModel, TransitionModel


@pytest.fixture(scope="module")
def transition_rows(cluster, medium_deck, fine_cost_table):
    faces = build_face_table(medium_deck.mesh)
    homo = GeneralModel(
        table=fine_cost_table, network=cluster.network, mode="homogeneous"
    )
    het = GeneralModel(
        table=fine_cost_table, network=cluster.network, mode="heterogeneous"
    )
    trans = TransitionModel.for_deck(medium_deck, fine_cost_table, cluster.network)

    rows = []
    p = 1
    while p <= 1024:
        part = cached_partition(medium_deck, p, seed=1, faces=faces)
        census = build_workload_census(medium_deck, part, faces)
        meas = measure_iteration_time(
            medium_deck, part, cluster=cluster, faces=faces, census=census
        ).seconds
        rows.append(
            (
                p,
                meas,
                homo.predict(medium_deck.num_cells, p).total,
                het.predict(medium_deck.num_cells, p).total,
                trans.predict(medium_deck.num_cells, p).total,
            )
        )
        p *= 2
    return rows


def test_transition_report(transition_rows, report_writer):
    table = TextTable(
        "Extension: transition model vs general-model variants (medium deck)",
        ["PEs", "meas (ms)", "homo err", "het err", "transition err"],
    )
    for p, meas, h, x, t in transition_rows:
        table.add_row(
            p,
            meas * 1e3,
            f"{(meas - h) / meas * 100:+.1f}%",
            f"{(meas - x) / meas * 100:+.1f}%",
            f"{(meas - t) / meas * 100:+.1f}%",
        )
    report_writer("ext_transition_model", table.render())


def test_transition_beats_both_variants_overall(transition_rows):
    """MAPE across the whole sweep: the transition model is at least as
    good as the better single variant."""
    meas = np.array([r[1] for r in transition_rows])
    homo = np.array([r[2] for r in transition_rows])
    het = np.array([r[3] for r in transition_rows])
    trans = np.array([r[4] for r in transition_rows])
    mape_h = mean_absolute_percentage_error(meas, homo)
    mape_x = mean_absolute_percentage_error(meas, het)
    mape_t = mean_absolute_percentage_error(meas, trans)
    assert mape_t <= min(mape_h, mape_x) + 0.5  # percentage points


def test_transition_matches_het_at_p1_and_homo_at_scale(transition_rows):
    p1 = transition_rows[0]
    assert p1[0] == 1
    # Better than homogeneous serially:
    assert abs(p1[1] - p1[4]) < abs(p1[1] - p1[2])
    # Identical to homogeneous at 1024 (pure-layer subgrids):
    last = transition_rows[-1]
    assert last[4] == pytest.approx(last[2], rel=0.01)


@pytest.mark.benchmark(group="ext-transition")
def test_bench_transition_predict(benchmark, registry_bench):
    pred = registry_bench(benchmark, "ext.transition_predict")[2]
    assert pred.total > 0
