"""Ablation: calibration sample density vs model error at the knee.

Section 5.1 blames the mesh-specific model's small-deck failures on "the
linear regression itself, or the linear interpolation between measured
values in the cost curves".  This ablation sweeps the contrived-grid sample
spacing and shows the knee-region prediction error shrinking as sampling
densifies — and that no density rescues a model evaluated far outside its
calibrated range.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import MeshSpecificModel, calibrate_contrived_grid

#: (label, contrived-grid sides): cells/PE samples are sides², so these are
#: ×256, ×16, and ×4 sample spacings.
DENSITIES = (
    ("sparse (x256)", [1, 16, 256]),
    ("medium (x16)", [1, 4, 16, 64, 256]),
    ("dense (x4)", [1, 2, 4, 8, 16, 32, 64, 128, 256]),
)


@pytest.fixture(scope="module")
def knee_rows(cluster, small_deck):
    faces = build_face_table(small_deck.mesh)
    part = cached_partition(small_deck, 64, seed=1, faces=faces)  # 50 cells/PE: knee
    census = build_workload_census(small_deck, part, faces)
    measured = measure_iteration_time(
        small_deck, part, cluster=cluster, faces=faces, census=census
    ).seconds
    rows = []
    for label, sides in DENSITIES:
        table = calibrate_contrived_grid(cluster, sides=sides)
        pred = MeshSpecificModel(table=table, network=cluster.network).predict(census)
        rows.append((label, len(sides), measured, pred.total, pred.error_vs(measured)))
    return rows


def test_knee_ablation_report(knee_rows, report_writer):
    table = TextTable(
        "Ablation: cost-curve sample density vs knee error "
        "(small deck, 64 PEs = 50 cells/PE)",
        ["density", "samples", "meas. (ms)", "pred. (ms)", "error"],
    )
    for label, n, meas, pred, err in knee_rows:
        table.add_row(label, n, meas * 1e3, pred * 1e3, f"{err * 100:+.1f}%")
    report_writer("ablation_knee", table.render())


def test_denser_sampling_reduces_knee_error(knee_rows):
    errors = [abs(err) for _, _, _, _, err in knee_rows]
    assert errors[0] > errors[-1]
    assert errors[0] > 0.3  # sparse sampling fails badly at the knee

def test_knee_error_systematically_overpredicts(knee_rows):
    """Linear-in-log interpolation chords a convex 1/n curve from above."""
    for label, _, _, _, err in knee_rows[:2]:
        assert err < 0, label


@pytest.mark.benchmark(group="ablation-knee")
def test_bench_calibration_density(benchmark, registry_bench):
    """Calibration cost at the registry's representative sample density
    (the knee-error-vs-density *accuracy* sweep lives in ``knee_rows``)."""
    table = registry_bench(benchmark, "ablation.calibration_density", rounds=2)[2]
    assert table.num_phases == 15
