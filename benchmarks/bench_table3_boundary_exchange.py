"""Table 3 / Figure 4: the boundary-exchange message tally.

The worked example: a processor boundary of 3 HE-gas faces, 2 + 2 aluminum
faces (treated as one material), and 3 foam faces, with ghost nodes on the
material interfaces enlarging the first two messages of each sextet.
"""

import numpy as np
import pytest

from repro.analysis import TextTable
from repro.perfmodel import boundary_message_sizes

#: Figure 4's boundary after combining the two aluminums, with the Table 3
#: multi-material ghost-node attributions (1 HE, 3 Al, 2 foam).
FACES = np.array([3, 4, 3])
MULTI = np.array([1, 3, 2])
GROUP_NAMES = ("H.E. Gas", "Aluminum (both)", "Foam")

#: The paper's Table 3 rows: (material, count, size in bytes).
PAPER_TABLE3 = [
    ("H.E. Gas", 2, 48),
    ("H.E. Gas", 4, 36),
    ("Aluminum (both)", 2, 84),
    ("Aluminum (both)", 4, 48),
    ("Foam", 2, 60),
    ("Foam", 4, 36),
    ("All", 6, 120),
]


def test_table3_report(report_writer):
    tally = boundary_message_sizes(FACES, MULTI)
    table = TextTable(
        "Table 3 (reproduced): boundary exchange example",
        ["Material", "Msg. count", "Size of each msg (bytes)"],
    )
    names = []
    for name in GROUP_NAMES:
        names += [name, name]
    names.append("All")
    for label, (count, size) in zip(names, tally):
        table.add_row(label, count, int(size))
    report_writer("table3_boundary_exchange", table.render())


def test_matches_paper_table3_exactly():
    """Every (count, size) row of the paper's Table 3 is reproduced."""
    tally = [(c, int(s)) for c, s in boundary_message_sizes(FACES, MULTI)]
    assert tally == [(c, s) for (_, c, s) in PAPER_TABLE3]


def test_total_bytes():
    tally = boundary_message_sizes(FACES, MULTI)
    total = sum(c * s for c, s in tally)
    paper_total = sum(c * s for (_, c, s) in PAPER_TABLE3)
    assert total == paper_total


@pytest.mark.benchmark(group="table3")
def test_bench_boundary_exchange_model(benchmark, registry_bench):
    """Equation (5) evaluation speed (called per neighbour per rank)."""
    bench, _, t = registry_bench(benchmark, "table3.boundary_exchange_model")
    assert bench.source.endswith("bench_table3_boundary_exchange.py")
    assert t > 0
