"""Ablation: binary-tree vs linear collective algorithms.

The paper models collectives as binary trees (log P steps).  This ablation
contrasts that with a naive linear (P−1 step) implementation to show why
the tree abstraction matters for the scalability story, and how much of the
iteration the collectives consume at scale.
"""

import pytest

from repro.analysis import TextTable
from repro.machine import QSNET_LIKE
from repro.perfmodel import collectives_time
from repro.simmpi import tree_depth

PE_SWEEP = (16, 64, 256, 1024)


def _linear_collectives_time(network, num_ranks: int) -> float:
    """Strawman: every collective visits all P−1 peers serially."""
    if num_ranks <= 1:
        return 0.0
    steps = num_ranks - 1
    bcast = 3 * steps * network.tmsg(4) + 3 * steps * network.tmsg(8)
    allreduce = 18 * steps * network.tmsg(4) + 26 * steps * network.tmsg(8)
    gather = steps * network.tmsg(32)
    return bcast + allreduce + gather


@pytest.fixture(scope="module")
def collective_rows():
    rows = []
    for p in PE_SWEEP:
        tree = collectives_time(QSNET_LIKE, p)
        linear = _linear_collectives_time(QSNET_LIKE, p)
        rows.append((p, tree, linear))
    return rows


def test_collectives_ablation_report(collective_rows, report_writer):
    table = TextTable(
        "Ablation: binary-tree vs linear collectives per iteration",
        ["PEs", "tree (ms)", "linear (ms)", "linear/tree"],
    )
    for p, tree, linear in collective_rows:
        table.add_row(p, tree * 1e3, linear * 1e3, linear / tree)
    report_writer("ablation_collectives", table.render())


def test_linear_blows_up_at_scale(collective_rows):
    p, tree, linear = collective_rows[-1]
    assert p == 1024
    assert linear / tree > 50  # (P-1) / log2(P) = 1023/10


def test_tree_time_grows_logarithmically(collective_rows):
    t = {p: tree for p, tree, _ in collective_rows}
    assert t[1024] / t[16] == pytest.approx(
        tree_depth(1024) / tree_depth(16), rel=1e-9
    )


def test_collectives_share_grows_with_p(cluster, fine_cost_table):
    """At fixed problem size, collectives take a growing share of the
    predicted iteration — the strong-scaling limit of Figure 5."""
    from repro.perfmodel import GeneralModel

    model = GeneralModel(table=fine_cost_table, network=cluster.network)
    shares = []
    for p in (64, 256, 1024):
        pred = model.predict(204800, p)
        shares.append(pred.collectives / pred.total)
    assert shares[0] < shares[1] < shares[2]


@pytest.mark.benchmark(group="ablation-collectives")
def test_bench_simulated_allreduce_1024(benchmark, registry_bench):
    """DES cost of one 1024-rank allreduce (engine scalability check)."""
    bench, ctx, makespan = registry_bench(
        benchmark, "ablation.simulated_allreduce", rounds=3
    )
    assert ctx["ranks"] == 1024
    assert makespan > 0
