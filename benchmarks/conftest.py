"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures: the fixture
layer builds the inputs (decks, cached partitions, calibrated cost tables)
and each bench times a representative kernel with pytest-benchmark while
writing the reproduced table/figure to ``benchmarks/reports/`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.machine import es45_like_cluster
from repro.mesh import build_deck, build_face_table
from repro.perfmodel import calibrate_contrived_grid, default_sample_sides

REPORTS_DIR = Path(__file__).resolve().parent / "reports"


@pytest.fixture(scope="session")
def cluster():
    """The simulated ES-45/QsNet-like validation machine."""
    return es45_like_cluster()


@pytest.fixture(scope="session")
def fine_cost_table(cluster):
    """Contrived-grid cost table over the full Figure 3 range."""
    return calibrate_contrived_grid(cluster, sides=default_sample_sides(512))


@pytest.fixture(scope="session")
def small_deck():
    return build_deck("small")


@pytest.fixture(scope="session")
def medium_deck():
    return build_deck("medium")


@pytest.fixture(scope="session")
def large_deck():
    return build_deck("large")


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report file and echo it to stdout."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return write
