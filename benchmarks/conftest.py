"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures: the fixture
layer builds the inputs (decks, cached partitions, calibrated cost tables)
and each bench times a representative kernel while writing the reproduced
table/figure to ``benchmarks/reports/`` for EXPERIMENTS.md.

The timed workloads themselves live in the :mod:`repro.bench` registry
(``repro bench list``); the ``registry_bench`` fixture is how a script
times one of them, and when pytest-benchmark is unavailable a minimal
stand-in fixture keeps the whole suite runnable under plain pytest (the
workload executes once, untimed).
"""

from __future__ import annotations

from pathlib import Path

import pytest

# The registry's memoised setup helpers double as the fixture layer, so one
# pytest session never builds the same deck or calibration table twice
# (once for a report test's fixture, once for a registry bench's setup).
from repro.bench.workloads import shared_cluster, shared_cost_table, shared_deck

try:  # pragma: no cover - exercised via the no-plugin CI lane
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:
    HAVE_PYTEST_BENCHMARK = False

REPORTS_DIR = Path(__file__).resolve().parent / "reports"


def pytest_configure(config):
    """Keep ``@pytest.mark.benchmark`` valid without the plugin."""
    if not HAVE_PYTEST_BENCHMARK:
        config.addinivalue_line(
            "markers", "benchmark(group): pytest-benchmark timing group (plugin absent)"
        )


if not HAVE_PYTEST_BENCHMARK:

    class _FallbackBenchmark:
        """Plugin-free ``benchmark`` stand-in: run once, no timing."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture()
    def benchmark():
        return _FallbackBenchmark()


@pytest.fixture(scope="session")
def registry_bench():
    """Time a :mod:`repro.bench` registry entry with pytest-benchmark.

    Returns ``(bench, context, result)`` so callers can assert on the
    workload's invariants.  This is the thin-client path: the script names
    the registry entry; setup, run, and invariants all come from there.
    """
    from repro.bench import SIZES, get_benchmark

    def run(benchmark, name, size="full", rounds=None):
        if size not in SIZES:
            raise ValueError(f"size must be one of {SIZES}, got {size!r}")
        bench = get_benchmark(name)
        context = bench.setup(size)
        if rounds is not None:
            result = benchmark.pedantic(
                bench.run, args=(context,), rounds=rounds, iterations=1
            )
        else:
            result = benchmark(bench.run, context)
        return bench, context, result

    return run


@pytest.fixture(scope="session")
def cluster():
    """The simulated ES-45/QsNet-like validation machine."""
    return shared_cluster()


@pytest.fixture(scope="session")
def fine_cost_table(cluster):
    """Contrived-grid cost table over the full Figure 3 range."""
    return shared_cost_table("fine")


@pytest.fixture(scope="session")
def small_deck():
    return shared_deck("small")


@pytest.fixture(scope="session")
def medium_deck():
    return shared_deck("medium")


@pytest.fixture(scope="session")
def large_deck():
    return shared_deck("large")


@pytest.fixture(scope="session")
def report_writer():
    """Write a named report file and echo it to stdout."""
    REPORTS_DIR.mkdir(parents=True, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return write
