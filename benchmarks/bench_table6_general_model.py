"""Table 6: general-model (homogeneous) validation at scale.

Medium and large decks at 128 / 256 / 512 processors, general model with a
homogeneous material distribution — the paper's headline result ("on 512
processors, model accuracy is within 3%"; all rows within 8 %).
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import GeneralModel

PE_COUNTS = (128, 256, 512)
#: Paper's Table 6: (measured ms, predicted ms, error).
PAPER_TABLE6 = {
    ("medium", 128): (61, 66, -0.080),
    ("medium", 256): (49, 51, -0.040),
    ("medium", 512): (44, 43, 0.029),
    ("large", 128): (170, 177, -0.043),
    ("large", 256): (95, 100, -0.046),
    ("large", 512): (67, 67, -0.010),
}


@pytest.fixture(scope="module")
def table6_rows(cluster, medium_deck, large_deck, fine_cost_table):
    rows = []
    for deck in (medium_deck, large_deck):
        faces = build_face_table(deck.mesh)
        model = GeneralModel(
            table=fine_cost_table, network=cluster.network, mode="homogeneous"
        )
        for p in PE_COUNTS:
            part = cached_partition(deck, p, seed=1, faces=faces)
            census = build_workload_census(deck, part, faces)
            measured = measure_iteration_time(
                deck, part, cluster=cluster, faces=faces, census=census
            ).seconds
            pred = model.predict(deck.num_cells, p)
            rows.append((deck.name, p, measured, pred.total, pred.error_vs(measured)))
    return rows


def test_table6_report(table6_rows, report_writer):
    table = TextTable(
        "Table 6 (reproduced): Krak validation results for the general model "
        "(homogeneous)",
        [
            "Problem",
            "PEs",
            "Meas. (ms)",
            "Pred. (ms)",
            "Error",
            "paper meas.",
            "paper err.",
        ],
    )
    for name, p, meas, pred, err in table6_rows:
        pm, _, pe = PAPER_TABLE6[(name, p)]
        table.add_row(
            name,
            p,
            meas * 1e3,
            pred * 1e3,
            f"{err * 100:+.1f}%",
            pm,
            f"{pe * 100:+.1f}%",
        )
    report_writer("table6_general_model", table.render())


def test_all_rows_within_12_percent(table6_rows):
    """The paper's headline band is ≤8 %; accept ≤12 % for the reproduction."""
    for name, p, _, _, err in table6_rows:
        assert abs(err) < 0.12, (name, p, err)


def test_large_512_within_5_percent(table6_rows):
    """The paper's flagship claim: within 3 % at 512 PEs on the large deck
    (we accept 5 % for the simulated substrate)."""
    (err,) = [
        err for name, p, _, _, err in table6_rows if name == "large" and p == 512
    ]
    assert abs(err) < 0.05


def test_measured_magnitudes_in_paper_range(table6_rows):
    """Absolute iteration times land in the paper's range (same order)."""
    for name, p, meas, _, _ in table6_rows:
        paper_meas = PAPER_TABLE6[(name, p)][0] * 1e-3
        assert 0.4 * paper_meas < meas < 2.5 * paper_meas, (name, p, meas)


@pytest.mark.benchmark(group="table6")
def test_bench_general_model_predict(benchmark, registry_bench):
    """The general model exists for rapid large-scale evaluation — it must
    be microseconds-fast per prediction."""
    pred = registry_bench(benchmark, "table6.general_model_predict")[2]
    assert pred.total > 0
