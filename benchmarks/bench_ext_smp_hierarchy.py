"""Extension: SMP-aware machine (4 ranks per ES-45 node).

The paper's flat ``Tmsg`` averages over shared-memory and QsNet paths; this
bench quantifies what the two-level reality does to measured iteration time
and shows the *blended flat-equivalent* network recovering most of the
model accuracy without pairwise placement information.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.machine import es45_like_cluster
from repro.mesh import build_face_table
from repro.partition import cached_partition
from repro.perfmodel import GeneralModel


@pytest.fixture(scope="module")
def smp_rows(medium_deck, fine_cost_table):
    flat = es45_like_cluster()
    smp = flat.with_smp()
    faces = build_face_table(medium_deck.mesh)
    rows = []
    for p in (64, 128, 256):
        part = cached_partition(medium_deck, p, seed=1, faces=faces)
        census = build_workload_census(medium_deck, part, faces)
        t_flat = measure_iteration_time(
            medium_deck, part, cluster=flat, faces=faces, census=census
        ).seconds
        t_smp = measure_iteration_time(
            medium_deck, part, cluster=smp, faces=faces, census=census
        ).seconds

        # Model the SMP machine with the blended flat-equivalent network.
        local_frac = smp.hierarchy.local_pair_fraction(
            None, census.face_census.pairs.keys()
        )
        blended = smp.hierarchy.flat_equivalent(local_frac)
        pred_flat_net = GeneralModel(
            table=fine_cost_table, network=flat.network, mode="homogeneous"
        ).predict(medium_deck.num_cells, p)
        pred_blended = GeneralModel(
            table=fine_cost_table, network=blended, mode="homogeneous"
        ).predict(medium_deck.num_cells, p)
        rows.append((p, t_flat, t_smp, local_frac, pred_flat_net.total, pred_blended.total))
    return rows


def test_smp_report(smp_rows, report_writer):
    table = TextTable(
        "Extension: SMP-aware machine vs flat network (medium deck)",
        [
            "PEs",
            "flat meas (ms)",
            "SMP meas (ms)",
            "on-node pairs",
            "flat-model err vs SMP",
            "blended-model err vs SMP",
        ],
    )
    for p, t_flat, t_smp, frac, pf, pb in smp_rows:
        table.add_row(
            p,
            t_flat * 1e3,
            t_smp * 1e3,
            f"{frac * 100:.0f}%",
            f"{(t_smp - pf) / t_smp * 100:+.1f}%",
            f"{(t_smp - pb) / t_smp * 100:+.1f}%",
        )
    report_writer("ext_smp_hierarchy", table.render())


def test_smp_is_faster(smp_rows):
    """Shared-memory paths shave real time off every configuration."""
    for p, t_flat, t_smp, *_ in smp_rows:
        assert t_smp < t_flat, p


def test_blended_model_closer_than_flat_model(smp_rows):
    """Against the SMP machine, the blended network beats the flat one."""
    for p, _, t_smp, _, pred_flat, pred_blend in smp_rows:
        err_flat = abs(t_smp - pred_flat) / t_smp
        err_blend = abs(t_smp - pred_blend) / t_smp
        assert err_blend <= err_flat + 0.01, p


def test_on_node_fraction_shrinks_with_p(smp_rows):
    """More ranks, same 4-per-node blocks: neighbour pairs increasingly
    cross nodes."""
    fracs = [frac for _, _, _, frac, _, _ in smp_rows]
    assert fracs[0] >= fracs[-1]


@pytest.mark.benchmark(group="ext-smp")
def test_bench_smp_simulation(benchmark, registry_bench):
    """Simulator overhead of per-pair network selection."""
    t = registry_bench(benchmark, "ext.smp_simulation")[2]
    assert t > 0
