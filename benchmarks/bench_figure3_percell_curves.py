"""Figure 3: per-cell computation time vs cells-per-processor.

Regenerates the three panels (phases 1, 2, 7) for all four materials from
the contrived-grid calibration runs, showing the knee: per-cell cost is flat
for large subgrids and rises as 1/n below ~10³ cells per processor.
"""

import numpy as np
import pytest

from repro.analysis import format_series
from repro.mesh import MATERIAL_NAMES, NUM_MATERIALS

#: 0-based indices of the phases plotted in Figure 3.
FIGURE3_PHASES = (0, 1, 6)


def test_figure3_report(fine_cost_table, report_writer):
    lines = [
        "Figure 3 (reproduced): per-cell computation time [s] vs cells per "
        "processor, phases 1 / 2 / 7"
    ]
    for phase in FIGURE3_PHASES:
        lines.append("")
        lines.append(f"--- Phase {phase + 1} ---")
        for m in range(NUM_MATERIALS):
            curve = fine_cost_table.curves[phase][m]
            lines.append(
                format_series(
                    f"phase {phase + 1} / {MATERIAL_NAMES[m]}",
                    curve.cells,
                    curve.per_cell,
                    "cells/PE",
                    "s/cell",
                )
            )
    report_writer("figure3_percell_curves", "\n".join(lines))


def test_knee_shape_all_phases(fine_cost_table):
    """Every curve decreases towards a flat large-subgrid plateau."""
    for phase in FIGURE3_PHASES:
        for m in range(NUM_MATERIALS):
            curve = fine_cost_table.curves[phase][m]
            # Small-subgrid cost dominated by overhead: orders of magnitude
            # above the flat region.
            assert curve.per_cell[0] > 20 * curve.per_cell[-1]
            # Large-subgrid plateau: last two samples within 30%.
            assert curve.per_cell[-1] == pytest.approx(
                curve.per_cell[-2], rel=0.3
            )


def test_phase2_knee_near_1000_cells(fine_cost_table):
    """The paper singles out phase 2's knee; it sits near 10³ cells/PE
    (where overhead/n equals the flat per-cell cost)."""
    curve = fine_cost_table.curves[1][0]
    flat = curve.per_cell[-1]
    knee_idx = int(np.argmin(np.abs(curve.per_cell - 2 * flat)))
    knee_cells = curve.cells[knee_idx]
    assert 100 <= knee_cells <= 20000


@pytest.mark.benchmark(group="figure3")
def test_bench_contrived_calibration(benchmark, registry_bench):
    """Cost of one contrived-grid calibration (all materials)."""
    table = registry_bench(benchmark, "figure3.contrived_calibration", rounds=3)[2]
    assert table.num_materials == NUM_MATERIALS
