"""Ablation: partitioner choice (multilevel Metis-analogue vs RCB vs block).

The paper attributes modelling difficulty to Metis's irregular partitions;
this ablation quantifies what the partitioner does to edge cut, neighbour
counts, and the measured iteration time on the simulated machine.
"""

import pytest

from repro.analysis import TextTable
from repro.hydro import build_workload_census, measure_iteration_time
from repro.mesh import build_face_table
from repro.partition import (
    cached_partition,
    dual_graph_of_mesh,
    partition_quality,
)

METHODS = ("multilevel", "rcb", "structured-block", "block")


@pytest.fixture(scope="module")
def ablation_rows(cluster, small_deck):
    faces = build_face_table(small_deck.mesh)
    g = dual_graph_of_mesh(small_deck.mesh, faces)
    rows = []
    for method in METHODS:
        part = cached_partition(small_deck, 16, method=method, seed=1, faces=faces)
        q = partition_quality(g, part)
        census = build_workload_census(small_deck, part, faces)
        measured = measure_iteration_time(
            small_deck, part, cluster=cluster, faces=faces, census=census
        ).seconds
        rows.append((method, q, measured))
    return rows


def test_partitioner_ablation_report(ablation_rows, report_writer):
    table = TextTable(
        "Ablation: partitioner choice (small deck, 16 PEs)",
        [
            "method",
            "edge cut",
            "imbalance",
            "mean nbrs",
            "max nbrs",
            "measured iter (ms)",
        ],
    )
    for method, q, measured in ablation_rows:
        table.add_row(
            method,
            q.edge_cut,
            q.imbalance,
            q.mean_neighbors,
            q.max_neighbors,
            measured * 1e3,
        )
    report_writer("ablation_partitioners", table.render())


def test_naive_block_has_worst_cut(ablation_rows):
    """Contiguous-id chunks ignore geometry: far larger edge cut."""
    cuts = {method: q.edge_cut for method, q, _ in ablation_rows}
    assert cuts["block"] > 2 * cuts["multilevel"]
    assert cuts["block"] > 2 * cuts["rcb"]


def test_measured_time_latency_not_cut_dominated(ablation_rows):
    """At 16 PEs the small deck is latency-dominated: the naive block
    partition's 3x edge cut costs almost nothing because it halves the
    neighbour count (fewer per-message latencies), while the extra bytes
    ride on cheap bandwidth.  This is the same effect the paper blames for
    the heterogeneous model's failure at scale — message *count*, not
    volume, is what hurts.  All four partitions land within a few percent."""
    times = [t for _, _, t in ablation_rows]
    assert max(times) / min(times) < 1.10

    # The extra bytes are real, just cheap: block moves more boundary data.
    cuts = {method: q.edge_cut for method, q, _ in ablation_rows}
    nbrs = {method: q.mean_neighbors for method, q, _ in ablation_rows}
    assert cuts["block"] > cuts["multilevel"]
    assert nbrs["block"] < nbrs["multilevel"]


def test_multilevel_irregular_vs_rcb_regular(ablation_rows):
    """The Metis-analogue produces more neighbour variance than RCB —
    the irregularity the paper's mesh-specific model must swallow."""
    q_ml = next(q for m, q, _ in ablation_rows if m == "multilevel")
    q_rcb = next(q for m, q, _ in ablation_rows if m == "rcb")
    assert q_ml.max_neighbors >= q_rcb.max_neighbors


@pytest.mark.benchmark(group="ablation-partitioners")
def test_bench_partitioners(benchmark, registry_bench):
    parts = registry_bench(benchmark, "ablation.partitioners", rounds=2)[2]
    assert all(part.num_ranks == 16 for part in parts)
